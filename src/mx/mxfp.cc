#include "mx/mxfp.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/stats.hh"

namespace m2x {

MxfpQuantizer::MxfpQuantizer(const Minifloat &elem, unsigned group_size,
                             ScaleRule rule)
    : elem_(elem), groupSize_(group_size), rule_(rule)
{
    m2x_assert(group_size >= 1, "group size must be positive");
}

ScaleE8m0
MxfpQuantizer::sharedScale(std::span<const float> in) const
{
    return computeSharedScale(absMax(in), elem_, rule_);
}

void
MxfpQuantizer::quantizeGroup(std::span<const float> in,
                             std::span<float> out) const
{
    m2x_assert(in.size() == out.size(), "group size mismatch");
    ScaleE8m0 s = sharedScale(in);
    float inv = s.inverse();
    float val = s.value();
    for (size_t i = 0; i < in.size(); ++i)
        out[i] = elem_.quantize(in[i] * inv) * val;
}

BitBudget
MxfpQuantizer::bitBudget() const
{
    return {static_cast<double>(elem_.bits()), 8.0, 0.0, groupSize_};
}

std::string
MxfpQuantizer::name() const
{
    std::string n = "MX" + elem_.name() + "-g" +
                    std::to_string(groupSize_);
    if (rule_ != ScaleRule::Floor)
        n += std::string("-") + scaleRuleName(rule_);
    return n;
}

MxfpQuantizer
MxfpQuantizer::mxfp4(ScaleRule rule)
{
    return {Minifloat::fp4e2m1(), 32, rule};
}

MxfpQuantizer
MxfpQuantizer::mxfp6e2m3()
{
    return {Minifloat::fp6e2m3(), 32, ScaleRule::Floor};
}

MxfpQuantizer
MxfpQuantizer::mxfp6e3m2()
{
    return {Minifloat::fp6e3m2(), 32, ScaleRule::Floor};
}

MxfpQuantizer
MxfpQuantizer::mxfp8e4m3()
{
    return {Minifloat::fp8e4m3(), 32, ScaleRule::Floor};
}

MxfpQuantizer
MxfpQuantizer::mxfp8e5m2()
{
    return {Minifloat::fp8e5m2(), 32, ScaleRule::Floor};
}

MxIntQuantizer::MxIntQuantizer(unsigned bits, unsigned group_size)
    : bits_(bits), groupSize_(group_size)
{
    m2x_assert(bits >= 2 && bits <= 16, "bad MXINT width %u", bits);
    maxCode_ = (1 << (bits - 1)) - 1;
    fracBits_ = static_cast<int>(bits) - 2; // OCP: magnitudes < 2
}

void
MxIntQuantizer::quantizeGroup(std::span<const float> in,
                              std::span<float> out) const
{
    m2x_assert(in.size() == out.size(), "group size mismatch");
    float amax = absMax(in);
    if (amax == 0.0f) {
        std::fill(out.begin(), out.end(), 0.0f);
        return;
    }
    // Shared exponent chosen so amax / 2^E lands in [1, 2) — the OCP
    // MXINT convention where mantissas span (-2, 2).
    int e = floorLog2Exact(amax);
    float scale = std::exp2(static_cast<float>(e));
    float inv = 1.0f / scale;
    float grid = std::exp2(static_cast<float>(fracBits_));
    for (size_t i = 0; i < in.size(); ++i) {
        double m = static_cast<double>(in[i] * inv) * grid;
        int64_t q = roundNearestEven(m);
        q = std::clamp<int64_t>(q, -maxCode_, maxCode_);
        out[i] = static_cast<float>(q) / grid * scale;
    }
}

BitBudget
MxIntQuantizer::bitBudget() const
{
    return {static_cast<double>(bits_), 8.0, 0.0, groupSize_};
}

std::string
MxIntQuantizer::name() const
{
    return "MXINT" + std::to_string(bits_) + "-g" +
           std::to_string(groupSize_);
}

} // namespace m2x
