/**
 * @file
 * MSFP — Microsoft Floating Point (Brainwave-style block floating
 * point). A block of k sign-magnitude fixed-point mantissas sharing
 * one 8-bit exponent; MSFP-12 and MSFP-16 name the combined width of
 * one element plus the shared scale (so 3 and 7 mantissa bits).
 */

#ifndef M2X_MX_MSFP_HH__
#define M2X_MX_MSFP_HH__

#include "quant/group_quantizer.hh"

namespace m2x {

/** Block-floating-point quantizer in the MSFP tradition. */
class MsfpQuantizer : public GroupQuantizer
{
  public:
    /**
     * @param total_bits  the MSFP-N designation (12 or 16): one sign
     *        bit + (N - 9) mantissa bits + the amortized 8-bit scale
     * @param group_size  bounding-box size (16 in the MSFP paper)
     */
    MsfpQuantizer(unsigned total_bits, unsigned group_size);

    void quantizeGroup(std::span<const float> in,
                       std::span<float> out) const override;

    unsigned groupSize() const override { return groupSize_; }
    BitBudget bitBudget() const override;
    std::string name() const override;

    static MsfpQuantizer msfp12() { return {12, 16}; }
    static MsfpQuantizer msfp16() { return {16, 16}; }

  private:
    unsigned totalBits_;
    unsigned mantBits_;
    unsigned groupSize_;
};

} // namespace m2x

#endif // M2X_MX_MSFP_HH__
