/**
 * @file
 * Max-value-preservation wrapper (the Fig. 3 motivation experiment):
 * quantize a group with an inner quantizer, but keep the group's
 * maximum-magnitude element in FP16. The paper uses this to show that
 * mishandling the block maximum is MXFP4's dominant error source.
 */

#ifndef M2X_MX_MAX_PRESERVE_HH__
#define M2X_MX_MAX_PRESERVE_HH__

#include <memory>

#include "quant/group_quantizer.hh"

namespace m2x {

/** Wraps an inner quantizer; group max bypasses it in FP16. */
class MaxPreserveQuantizer : public GroupQuantizer
{
  public:
    explicit MaxPreserveQuantizer(std::unique_ptr<GroupQuantizer> inner);

    void calibrate(std::span<const float> full) override;

    void quantizeGroup(std::span<const float> in,
                       std::span<float> out) const override;

    unsigned groupSize() const override { return inner_->groupSize(); }
    BitBudget bitBudget() const override;
    std::string name() const override;

  private:
    std::unique_ptr<GroupQuantizer> inner_;
};

} // namespace m2x

#endif // M2X_MX_MAX_PRESERVE_HH__
