/**
 * @file
 * SMX — Shared Microexponents (Rouhani et al., ISCA'23), the two-level
 * shared-scale format the paper evaluates as SMX4.
 *
 * Structure: k1 elements (16) share an 8-bit E8M0 scale; within the
 * block, each k2-sized subgroup (2) shares a 1-bit micro-exponent
 * that optionally shifts the subgroup down by one binade. Elements
 * are sign-magnitude fixed-point mantissas ("INT3" for SMX4: sign +
 * 2 mantissa bits).
 *
 * The paper's Fig. 3 observation — SMX4 collapses when the two paired
 * elements differ in magnitude — falls out of this construction: one
 * large element forces the pair's micro-exponent high, crushing its
 * small neighbour's resolution.
 */

#ifndef M2X_MX_SMX_HH__
#define M2X_MX_SMX_HH__

#include "quant/group_quantizer.hh"

namespace m2x {

/** SMX quantizer with configurable mantissa width and k1/k2. */
class SmxQuantizer : public GroupQuantizer
{
  public:
    /**
     * @param mant_bits  element mantissa bits (2 for SMX4)
     * @param k1  block size sharing the 8-bit scale (16)
     * @param k2  subgroup size sharing the 1-bit micro-exponent (2)
     */
    SmxQuantizer(unsigned mant_bits, unsigned k1, unsigned k2);

    void quantizeGroup(std::span<const float> in,
                       std::span<float> out) const override;

    unsigned groupSize() const override { return k1_; }
    BitBudget bitBudget() const override;
    std::string name() const override;

    /** SMX4: sign + 2-bit mantissa, k1=16, k2=2 (paper's config). */
    static SmxQuantizer smx4() { return {2, 16, 2}; }

  private:
    unsigned mantBits_;
    unsigned k1_;
    unsigned k2_;
};

} // namespace m2x

#endif // M2X_MX_SMX_HH__
