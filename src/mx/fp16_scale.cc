#include "mx/fp16_scale.hh"

#include <algorithm>
#include <cmath>

#include "formats/half.hh"
#include "formats/intcodec.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace m2x {

Fp16ScaleQuantizer::Fp16ScaleQuantizer(const Minifloat &elem,
                                       unsigned group_size)
    : elem_(elem), groupSize_(group_size)
{
    m2x_assert(group_size >= 1, "group size must be positive");
}

void
Fp16ScaleQuantizer::quantizeGroup(std::span<const float> in,
                                  std::span<float> out) const
{
    m2x_assert(in.size() == out.size(), "group size mismatch");
    float amax = absMax(in);
    if (amax == 0.0f) {
        std::fill(out.begin(), out.end(), 0.0f);
        return;
    }
    // FP16 scale maps the block max onto the format max exactly
    // (up to FP16 rounding of the scale itself) — Fig. 2 top.
    float s = quantizeToHalf(amax / elem_.maxValue());
    if (s <= 0.0f)
        s = halfBitsToFloat(0x0001); // smallest positive half
    float inv = 1.0f / s;
    for (size_t i = 0; i < in.size(); ++i)
        out[i] = elem_.quantize(in[i] * inv) * s;
}

BitBudget
Fp16ScaleQuantizer::bitBudget() const
{
    return {static_cast<double>(elem_.bits()), 16.0, 0.0, groupSize_};
}

std::string
Fp16ScaleQuantizer::name() const
{
    return elem_.name() + "-fp16s-g" + std::to_string(groupSize_);
}

Fp16ScaleQuantizer
Fp16ScaleQuantizer::fp4(unsigned group_size)
{
    return {Minifloat::fp4e2m1(), group_size};
}

IntFp16ScaleQuantizer::IntFp16ScaleQuantizer(unsigned bits,
                                             unsigned group_size)
    : bits_(bits), groupSize_(group_size)
{
    m2x_assert(bits >= 2 && bits <= 8, "bad int width %u", bits);
    maxCode_ = (1 << (bits - 1)) - 1;
}

void
IntFp16ScaleQuantizer::quantizeGroup(std::span<const float> in,
                                     std::span<float> out) const
{
    m2x_assert(in.size() == out.size(), "group size mismatch");
    float amax = absMax(in);
    if (amax == 0.0f) {
        std::fill(out.begin(), out.end(), 0.0f);
        return;
    }
    float s = quantizeToHalf(amax / static_cast<float>(maxCode_));
    if (s <= 0.0f)
        s = halfBitsToFloat(0x0001);
    float inv = 1.0f / s;
    for (size_t i = 0; i < in.size(); ++i) {
        int64_t q = roundNearestEven(static_cast<double>(in[i] * inv));
        q = std::clamp<int64_t>(q, -maxCode_, maxCode_);
        out[i] = static_cast<float>(q) * s;
    }
}

BitBudget
IntFp16ScaleQuantizer::bitBudget() const
{
    return {static_cast<double>(bits_), 16.0, 0.0, groupSize_};
}

std::string
IntFp16ScaleQuantizer::name() const
{
    return "INT" + std::to_string(bits_) + "-fp16s-g" +
           std::to_string(groupSize_);
}

} // namespace m2x
