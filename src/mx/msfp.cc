#include "mx/msfp.hh"

#include <algorithm>
#include <cmath>

#include "formats/intcodec.hh"
#include "quant/scale_rules.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace m2x {

MsfpQuantizer::MsfpQuantizer(unsigned total_bits, unsigned group_size)
    : totalBits_(total_bits), groupSize_(group_size)
{
    m2x_assert(total_bits >= 10 && total_bits <= 24,
               "MSFP width %u out of range", total_bits);
    mantBits_ = total_bits - 9; // minus sign and shared 8-bit exponent
}

void
MsfpQuantizer::quantizeGroup(std::span<const float> in,
                             std::span<float> out) const
{
    m2x_assert(in.size() == out.size(), "group size mismatch");
    float amax = absMax(in);
    if (amax == 0.0f) {
        std::fill(out.begin(), out.end(), 0.0f);
        return;
    }
    int e = floorLog2Exact(amax) + 1; // amax / 2^e in [0.5, 1)
    float scale = std::exp2(static_cast<float>(e));
    float inv = 1.0f / scale;
    float grid = std::exp2(static_cast<float>(mantBits_));
    int32_t max_code = static_cast<int32_t>(grid) - 1;
    for (size_t i = 0; i < in.size(); ++i) {
        int64_t q = roundNearestEven(
            static_cast<double>(in[i] * inv) * grid);
        q = std::clamp<int64_t>(q, -max_code, max_code);
        out[i] = static_cast<float>(q) / grid * scale;
    }
}

BitBudget
MsfpQuantizer::bitBudget() const
{
    return {static_cast<double>(1 + mantBits_), 8.0, 0.0, groupSize_};
}

std::string
MsfpQuantizer::name() const
{
    return "MSFP-" + std::to_string(totalBits_) + "-g" +
           std::to_string(groupSize_);
}

} // namespace m2x
