/**
 * @file
 * The codec axis of the packed execution runtime.
 *
 * The three-stream packed layout (element nibbles / one scale byte /
 * one metadata byte per group) hosts more formats than the paper's
 * Elem-EM pair: every codec in the tree that is "FP4 elements + one
 * 8-bit shared scale + <= 4 subgroups x 2 metadata bits per group"
 * maps onto the exact same byte geometry, differing only in group
 * width and in how the scale and metadata bytes are interpreted.
 * PackedCodec names one such format *pair* (an activation-role and a
 * weight-role semantics over the same streams); PackedCodecInfo is
 * the compile-time stream-geometry description every layout-touching
 * component (tensor, GEMM driver, encoder, KV arena) consumes instead
 * of hardcoded Elem-EM constants.
 *
 * The runtime-facing decode/LUT side of the seam lives in
 * runtime/codec_traits.hh; this header is layout-only so core stays
 * free of kernel concerns.
 */

#ifndef M2X_CORE_PACKED_CODEC_HH__
#define M2X_CORE_PACKED_CODEC_HH__

#include <cstdint>
#include <span>

namespace m2x {

/** A format pair the packed runtime can execute. */
enum class PackedCodec : uint8_t {
    /** Paper default: Elem-EM-top1 acts + Sg-EM-2bit weights
     *  (g32/sg8, E8M0 scale, 4.5 bits/element). */
    ElemEm,
    /** Elem-EE acts (top-1 extra *exponent*, offset bias 2) + Sg-EM
     *  weights — the taxonomy's fourth quadrant at runtime speed. */
    ElemEe,
    /** Sg-EM-2bit on both roles: subgroup-scale multipliers for
     *  activations too (no top-1 selection). */
    SgEm,
    /** M2-NVFP4 (Tbl. 6): g16/sg4 over an FP8 E4M3 block scale,
     *  Elem-EM-top1 acts + Sg-EM weights, 5.0 bits/element. */
    M2Nvfp4,
};

/** Number of registered codecs (allPackedCodecs().size()). */
inline constexpr size_t packedCodecCount = 4;

/** Stream-geometry + scale-rule description of one codec. */
struct PackedCodecInfo
{
    const char *name;           //!< stable lowercase id for env/JSON
    unsigned groupSize;         //!< elements per group
    unsigned subgroupSize;      //!< elements per metadata granule
    unsigned bytesPerGroupElems; //!< groupSize / 2 packed nibbles
    double bitsPerElement;      //!< (elem + scale + meta bits) / group
    bool scaleIsFp8;            //!< FP8 E4M3 scale byte; else E8M0
};

/** Geometry of @p codec (static storage, never fails). */
const PackedCodecInfo &packedCodecInfo(PackedCodec codec);

/** packedCodecInfo(codec).name. */
const char *packedCodecName(PackedCodec codec);

/**
 * Parse a codec name ("elem_em", "elem_ee", "sg_em", "m2_nvfp4").
 * Returns false (and leaves @p out untouched) on anything else.
 */
bool parsePackedCodec(const char *s, PackedCodec &out);

/** Every registered codec, ElemEm first. */
std::span<const PackedCodec> allPackedCodecs();

/**
 * The process-wide default codec, resolved once on first call: the
 * M2X_FORMAT environment override if set (malformed values warn and
 * fall back), else ElemEm. Session-level constructors
 * (InferenceSession, DecodeSession, ServingEngine) default to this;
 * low-level APIs keep explicit ElemEm defaults so byte-exactness
 * contracts stay pinned.
 */
PackedCodec defaultPackedCodec();

namespace codec_detail {

/**
 * Pure resolution of an M2X_FORMAT value (nullptr = unset) to a
 * codec; exposed so tests can cover the parsing without re-execing.
 */
PackedCodec resolvePackedCodec(const char *env);

} // namespace codec_detail

} // namespace m2x

#endif // M2X_CORE_PACKED_CODEC_HH__
