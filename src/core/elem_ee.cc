#include "core/elem_ee.hh"

#include <algorithm>
#include <cmath>

#include "core/elem_em.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace m2x {

ElemEeQuantizer::ElemEeQuantizer(ElemEeConfig cfg) : cfg_(cfg)
{
    m2x_assert(cfg_.subgroupSize >= 1 &&
               cfg_.subgroupSize <= cfg_.groupSize,
               "bad subgroup size");
    m2x_assert(cfg_.metaBits >= 1 && cfg_.metaBits <= 3,
               "bad metadata width %u", cfg_.metaBits);
}

ElemEeGroup
ElemEeQuantizer::encodeGroup(std::span<const float> in) const
{
    const Minifloat &fp4 = Minifloat::fp4e2m1();
    ElemEeGroup g;
    g.scale = computeSharedScale(absMax(in), fp4, cfg_.rule);
    float inv = g.scale.inverse();

    g.fp4Codes.resize(in.size());
    for (size_t i = 0; i < in.size(); ++i)
        g.fp4Codes[i] = static_cast<uint8_t>(fp4.encode(in[i] * inv));

    unsigned n_codes = 1u << cfg_.metaBits;
    size_t sg = cfg_.subgroupSize;
    for (size_t base = 0; base < in.size(); base += sg) {
        size_t len = std::min(sg, in.size() - base);
        std::span<const uint8_t> codes(g.fp4Codes.data() + base, len);
        size_t idx = ElemEmQuantizer::top1Index(codes);
        float target = std::fabs(in[base + idx]) * inv;

        // The offset multiplies the already-stored FP4 value (range
        // extension, not precision): the code itself is untouched so
        // the decoder's top-1 selection is guaranteed to match.
        float fp4_val =
            std::fabs(fp4.decode(g.fp4Codes[base + idx] & 0x7u));
        uint8_t best_m = static_cast<uint8_t>(cfg_.offsetBias);
        float best_err = -1.0f;
        for (unsigned m = 0; m < n_codes; ++m) {
            int off = static_cast<int>(m) - cfg_.offsetBias;
            float q =
                fp4_val * std::exp2(static_cast<float>(off));
            float err = std::fabs(q - target);
            if (best_err < 0.0f || err < best_err) {
                best_err = err;
                best_m = static_cast<uint8_t>(m);
            }
        }
        g.meta.push_back(best_m);
    }
    return g;
}

void
ElemEeQuantizer::decodeGroup(const ElemEeGroup &g,
                             std::span<float> out) const
{
    const Minifloat &fp4 = Minifloat::fp4e2m1();
    m2x_assert(out.size() == g.fp4Codes.size(), "decode size mismatch");
    float sval = g.scale.value();
    for (size_t i = 0; i < out.size(); ++i)
        out[i] = fp4.decode(g.fp4Codes[i]) * sval;

    size_t sg = cfg_.subgroupSize;
    size_t sg_index = 0;
    for (size_t base = 0; base < out.size(); base += sg, ++sg_index) {
        size_t len = std::min(sg, out.size() - base);
        std::span<const uint8_t> codes(g.fp4Codes.data() + base, len);
        size_t idx = ElemEmQuantizer::top1Index(codes);
        m2x_assert(sg_index < g.meta.size(), "metadata missing");
        int off = static_cast<int>(g.meta[sg_index]) -
                  cfg_.offsetBias;
        out[base + idx] *= std::exp2(static_cast<float>(off));
    }
}

void
ElemEeQuantizer::quantizeGroup(std::span<const float> in,
                               std::span<float> out) const
{
    ElemEeGroup g = encodeGroup(in);
    decodeGroup(g, out);
}

BitBudget
ElemEeQuantizer::bitBudget() const
{
    unsigned n_sub = (cfg_.groupSize + cfg_.subgroupSize - 1) /
                     cfg_.subgroupSize;
    return {4.0, 8.0, static_cast<double>(cfg_.metaBits) * n_sub,
            cfg_.groupSize};
}

std::string
ElemEeQuantizer::name() const
{
    return "ElemEE-" + std::to_string(cfg_.metaBits) + "b-g" +
           std::to_string(cfg_.groupSize) + "/sg" +
           std::to_string(cfg_.subgroupSize);
}

} // namespace m2x
