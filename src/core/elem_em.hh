/**
 * @file
 * Elem-EM: element-level extra-mantissa quantization for activations —
 * Algorithm 1 of the M2XFP paper.
 *
 * Per group of k (32): compute the shared E8M0 scale from the block
 * max, quantize every element to FP4 E2M1, then per subgroup (8):
 *  - identify the top-1 element *in the FP4 domain* (magnitude code
 *    compare; ties resolved to the lowest index, so the decoder —
 *    which sees only FP4 codes — finds the same element),
 *  - re-round the original value to FP6 E2M3 under the same scale,
 *  - store the FP6/FP4 difference as 2 metadata bits with the paper's
 *    bias-and-clamp encoding:
 *        encoded = fp6_mag + 1,
 *        clamped to [fp4_mag*4, fp4_mag*4 + 3],
 *        meta    = clamped & 3,
 *    giving the decoder fp6_mag = fp4_mag*4 + meta - 1 (bias range
 *    {-1, 0, +1, +2} around the FP4 value, Fig. 8).
 *
 * The clamp loses the farthest-down FP6 candidate (the paper's "bad
 * case": 3.578 decodes to 3.75 instead of 3.5); the unclamped 3-bit
 * variant is available for the ablation bench.
 */

#ifndef M2X_CORE_ELEM_EM_HH__
#define M2X_CORE_ELEM_EM_HH__

#include <cstdint>
#include <vector>

#include "formats/e8m0.hh"
#include "formats/minifloat.hh"
#include "quant/group_quantizer.hh"
#include "quant/scale_rules.hh"

namespace m2x {

/** Bit-level encoding of one Elem-EM group. */
struct ElemEmGroup
{
    ScaleE8m0 scale;                 //!< shared E8M0 scale
    std::vector<uint8_t> fp4Codes;   //!< one 4-bit code per element
    std::vector<uint8_t> meta;       //!< 2-bit metadata per subgroup
};

/** Configuration for the Elem-EM codec. */
struct ElemEmConfig
{
    unsigned groupSize = 32;
    unsigned subgroupSize = 8;
    unsigned topK = 1;          //!< elements re-rounded per subgroup
    ScaleRule rule = ScaleRule::Floor;
    bool adaptiveScale = false; //!< search E in {E-1, E, E+1} by MSE
    bool clampBias = true;      //!< paper encoding; false = 3-bit meta
};

/**
 * The Elem-EM codec. encodeGroup()/decodeGroup() expose the bit-level
 * representation; the GroupQuantizer interface returns dequantized
 * floats for use in model evaluation.
 */
class ElemEmQuantizer : public GroupQuantizer
{
  public:
    explicit ElemEmQuantizer(ElemEmConfig cfg = {});

    /** Encode one group (in.size() <= groupSize). */
    ElemEmGroup encodeGroup(std::span<const float> in) const;

    /**
     * Decode a group encoding into values. Recomputes the top-1
     * selection from the FP4 codes exactly as the hardware decode
     * unit does.
     * @param n number of valid elements
     */
    void decodeGroup(const ElemEmGroup &g, std::span<float> out) const;

    void quantizeGroup(std::span<const float> in,
                       std::span<float> out) const override;

    unsigned groupSize() const override { return cfg_.groupSize; }
    BitBudget bitBudget() const override;
    std::string name() const override;

    const ElemEmConfig &config() const { return cfg_; }

    /**
     * Top-1 index of a subgroup given FP4 codes: the element with the
     * largest magnitude code; ties go to the lowest index (Alg. 1
     * steps 3-4). Exposed for the hardware decode unit tests.
     */
    static size_t top1Index(std::span<const uint8_t> fp4_codes);

    /**
     * The paper's 2-bit metadata encoding (Alg. 1 steps 6-7).
     * @return metadata in [0, 3]
     */
    static uint8_t encodeMeta(uint32_t fp6_mag, uint32_t fp4_mag);

    /** Reconstructed FP6 magnitude code: fp4_mag*4 + meta - 1. */
    static uint32_t decodeFp6Mag(uint32_t fp4_mag, uint8_t meta);

  private:
    ElemEmConfig cfg_;

    ElemEmGroup encodeWithScale(std::span<const float> in,
                                ScaleE8m0 s) const;
    double groupMse(std::span<const float> in,
                    const ElemEmGroup &g) const;
};

} // namespace m2x

#endif // M2X_CORE_ELEM_EM_HH__
