#include "core/packed_codec.hh"

#include <cstdlib>
#include <cstring>

#include "util/logging.hh"

namespace m2x {

namespace {

// Bits/element = 4 (FP4) + 8/groupSize (scale) + 2*nSub/groupSize
// (metadata). g32/sg8: 4 + 0.25 + 0.25 = 4.5; g16/sg4: 4 + 0.5 +
// 0.5 = 5.0 — the overhead Tbl. 6 calls out for M2-NVFP4.
constexpr PackedCodecInfo infos[packedCodecCount] = {
    {"elem_em", 32, 8, 16, 4.5, false},
    {"elem_ee", 32, 8, 16, 4.5, false},
    {"sg_em", 32, 8, 16, 4.5, false},
    {"m2_nvfp4", 16, 4, 8, 5.0, true},
};

constexpr PackedCodec codecs[packedCodecCount] = {
    PackedCodec::ElemEm,
    PackedCodec::ElemEe,
    PackedCodec::SgEm,
    PackedCodec::M2Nvfp4,
};

} // anonymous namespace

const PackedCodecInfo &
packedCodecInfo(PackedCodec codec)
{
    size_t i = static_cast<size_t>(codec);
    m2x_assert(i < packedCodecCount, "bad PackedCodec %zu", i);
    return infos[i];
}

const char *
packedCodecName(PackedCodec codec)
{
    return packedCodecInfo(codec).name;
}

bool
parsePackedCodec(const char *s, PackedCodec &out)
{
    if (!s)
        return false;
    for (size_t i = 0; i < packedCodecCount; ++i) {
        if (std::strcmp(s, infos[i].name) == 0) {
            out = codecs[i];
            return true;
        }
    }
    return false;
}

std::span<const PackedCodec>
allPackedCodecs()
{
    return {codecs, packedCodecCount};
}

namespace codec_detail {

PackedCodec
resolvePackedCodec(const char *env)
{
    if (!env || !*env)
        return PackedCodec::ElemEm;
    PackedCodec c;
    if (parsePackedCodec(env, c))
        return c;
    m2x_warn("ignoring unknown M2X_FORMAT value '%s' (want one of "
             "elem_em, elem_ee, sg_em, m2_nvfp4)", env);
    return PackedCodec::ElemEm;
}

} // namespace codec_detail

PackedCodec
defaultPackedCodec()
{
    static const PackedCodec codec =
        codec_detail::resolvePackedCodec(std::getenv("M2X_FORMAT"));
    return codec;
}

} // namespace m2x
