#include "core/m2xfp_packed.hh"

#include <algorithm>

#include "util/bits.hh"
#include "util/logging.hh"

namespace m2x {

void
PackedM2xfpTensor::setCodec(PackedCodec codec)
{
    codec_ = codec;
    const PackedCodecInfo &info = packedCodecInfo(codec);
    codecGroupSize_ = info.groupSize;
    groupElemBytes_ = info.bytesPerGroupElems;
}

void
PackedM2xfpTensor::reserveShape(size_t rows, size_t cols)
{
    rows_ = rows;
    cols_ = cols;
    groupsPerRow_ = ceilDiv(cols, codecGroupSize_);
    elements_.assign(rows * groupsPerRow_ * groupElemBytes_, 0);
    scales_.assign(rows * groupsPerRow_, 0);
    meta_.assign(rows * groupsPerRow_, 0);
}

void
PackedM2xfpTensor::resizeShape(size_t rows, size_t cols)
{
    rows_ = rows;
    cols_ = cols;
    groupsPerRow_ = ceilDiv(cols, codecGroupSize_);
    size_t n_groups = rows * groupsPerRow_;
    elements_.resize(n_groups * groupElemBytes_);
    scales_.resize(n_groups);
    meta_.resize(n_groups);
}

void
PackedM2xfpTensor::setElementCode(size_t r, size_t c, uint8_t code)
{
    size_t group = c / codecGroupSize_;
    size_t in_group = c % codecGroupSize_;
    size_t byte = (r * groupsPerRow_ + group) * groupElemBytes_ +
                  in_group / 2;
    if (in_group % 2 == 0)
        elements_[byte] = static_cast<uint8_t>(
            (elements_[byte] & 0xf0u) | (code & 0x0fu));
    else
        elements_[byte] = static_cast<uint8_t>(
            (elements_[byte] & 0x0fu) | ((code & 0x0fu) << 4));
}

uint8_t
PackedM2xfpTensor::elementCode(size_t r, size_t c) const
{
    size_t group = c / codecGroupSize_;
    size_t in_group = c % codecGroupSize_;
    size_t byte = (r * groupsPerRow_ + group) * groupElemBytes_ +
                  in_group / 2;
    uint8_t b = elements_[byte];
    return (in_group % 2 == 0) ? (b & 0x0fu) : (b >> 4);
}

uint8_t
PackedM2xfpTensor::subgroupMeta(size_t r, size_t group,
                                size_t sub) const
{
    uint8_t b = meta_[r * groupsPerRow_ + group];
    return static_cast<uint8_t>((b >> (2 * sub)) & 0x3u);
}

uint8_t
PackedM2xfpTensor::scaleCode(size_t r, size_t group) const
{
    return scales_[r * groupsPerRow_ + group];
}

double
PackedM2xfpTensor::bitsPerElement() const
{
    if (rows_ == 0 || cols_ == 0)
        return 0.0;
    return 8.0 * static_cast<double>(totalBytes()) /
           (static_cast<double>(rows_) * static_cast<double>(cols_));
}

PackedM2xfpTensor
PackedM2xfpTensor::fromRawStreams(size_t rows, size_t cols,
                                  std::vector<uint8_t> elements,
                                  std::vector<uint8_t> scales,
                                  std::vector<uint8_t> meta,
                                  PackedCodec codec)
{
    PackedM2xfpTensor t;
    t.setCodec(codec);
    t.rows_ = rows;
    t.cols_ = cols;
    t.groupsPerRow_ = ceilDiv(cols, t.codecGroupSize_);
    size_t n_groups = rows * t.groupsPerRow_;
    m2x_assert(elements.size() == n_groups * t.groupElemBytes_,
               "element stream: %zu bytes, want %zu",
               elements.size(), n_groups * t.groupElemBytes_);
    m2x_assert(scales.size() == n_groups,
               "scale stream: %zu bytes, want %zu", scales.size(),
               n_groups);
    m2x_assert(meta.size() == n_groups,
               "metadata stream: %zu bytes, want %zu", meta.size(),
               n_groups);
    t.elements_ = std::move(elements);
    t.scales_ = std::move(scales);
    t.meta_ = std::move(meta);
    return t;
}

PackedM2xfpTensor
PackedM2xfpTensor::emptyActivations(size_t cols,
                                    const ElemEmQuantizer &q)
{
    const ElemEmConfig &cfg = q.config();
    m2x_assert(cfg.groupSize == groupSize &&
               cfg.subgroupSize == subgroupSize && cfg.topK == 1 &&
               cfg.clampBias,
               "packed layout requires the paper config (g32/sg8 top1)");
    m2x_assert(cols > 0, "empty activation tensor needs cols > 0");
    PackedM2xfpTensor t;
    t.rows_ = 0;
    t.cols_ = cols;
    t.groupsPerRow_ = ceilDiv(cols, groupSize);
    return t;
}

void
PackedM2xfpTensor::reserveActivationRows(size_t rows)
{
    m2x_assert(cols_ > 0, "reserveActivationRows on a shapeless "
               "tensor (create via emptyActivations)");
    elements_.reserve(rows * groupsPerRow_ * groupElemBytes_);
    scales_.reserve(rows * groupsPerRow_);
    meta_.reserve(rows * groupsPerRow_);
}

void
PackedM2xfpTensor::clearActivationRows()
{
    rows_ = 0;
    // clear() keeps vector capacity, so the next append round
    // re-fills the recycled streams without reallocating.
    elements_.clear();
    scales_.clear();
    meta_.clear();
}

PackedM2xfpTensor
PackedM2xfpTensor::packActivations(const Matrix &m,
                                   const ElemEmQuantizer &q)
{
    const ElemEmConfig &cfg = q.config();
    m2x_assert(cfg.groupSize == groupSize &&
               cfg.subgroupSize == subgroupSize && cfg.topK == 1 &&
               cfg.clampBias,
               "packed layout requires the paper config (g32/sg8 top1)");

    PackedM2xfpTensor t;
    t.reserveShape(m.rows(), m.cols());
    std::vector<float> padded(groupSize);
    for (size_t r = 0; r < m.rows(); ++r) {
        std::span<const float> row = m.row(r);
        for (size_t g_idx = 0; g_idx < t.groupsPerRow_; ++g_idx) {
            size_t base = g_idx * groupSize;
            size_t len = std::min<size_t>(groupSize,
                                          m.cols() - base);
            std::fill(padded.begin(), padded.end(), 0.0f);
            std::copy(row.begin() + base, row.begin() + base + len,
                      padded.begin());
            ElemEmGroup g = q.encodeGroup(padded);
            size_t slot = r * t.groupsPerRow_ + g_idx;
            t.scales_[slot] = g.scale.code();
            uint8_t mb = 0;
            for (size_t s = 0; s < g.meta.size() && s < 4; ++s)
                mb = static_cast<uint8_t>(mb |
                    ((g.meta[s] & 0x3u) << (2 * s)));
            t.meta_[slot] = mb;
            for (size_t i = 0; i < groupSize; ++i)
                t.setElementCode(r, base + i, g.fp4Codes[i]);
        }
    }
    return t;
}

PackedM2xfpTensor
PackedM2xfpTensor::packWeights(const Matrix &m, const SgEmQuantizer &q)
{
    const SgEmConfig &cfg = q.config();
    m2x_assert(cfg.groupSize == groupSize &&
               cfg.subgroupSize == subgroupSize && cfg.metaBits == 2 &&
               !cfg.extraExponent,
               "packed layout requires the paper config (g32/sg8 2b)");

    PackedM2xfpTensor t;
    t.reserveShape(m.rows(), m.cols());
    std::vector<float> padded(groupSize);
    for (size_t r = 0; r < m.rows(); ++r) {
        std::span<const float> row = m.row(r);
        for (size_t g_idx = 0; g_idx < t.groupsPerRow_; ++g_idx) {
            size_t base = g_idx * groupSize;
            size_t len = std::min<size_t>(groupSize,
                                          m.cols() - base);
            std::fill(padded.begin(), padded.end(), 0.0f);
            std::copy(row.begin() + base, row.begin() + base + len,
                      padded.begin());
            SgEmGroup g = q.encodeGroup(padded);
            size_t slot = r * t.groupsPerRow_ + g_idx;
            t.scales_[slot] = g.scale.code();
            uint8_t mb = 0;
            for (size_t s = 0; s < g.sgMeta.size() && s < 4; ++s)
                mb = static_cast<uint8_t>(mb |
                    ((g.sgMeta[s] & 0x3u) << (2 * s)));
            t.meta_[slot] = mb;
            for (size_t i = 0; i < groupSize; ++i)
                t.setElementCode(r, base + i, g.fp4Codes[i]);
        }
    }
    return t;
}

Matrix
PackedM2xfpTensor::unpackActivations(const ElemEmQuantizer &q) const
{
    Matrix out(rows_, cols_);
    std::vector<float> dec(groupSize);
    for (size_t r = 0; r < rows_; ++r) {
        for (size_t g_idx = 0; g_idx < groupsPerRow_; ++g_idx) {
            ElemEmGroup g;
            size_t slot = r * groupsPerRow_ + g_idx;
            g.scale = ScaleE8m0::fromCode(scales_[slot]);
            g.fp4Codes.resize(groupSize);
            size_t base = g_idx * groupSize;
            for (size_t i = 0; i < groupSize; ++i)
                g.fp4Codes[i] = elementCode(r, base + i);
            g.meta.resize(groupSize / subgroupSize);
            for (size_t s = 0; s < g.meta.size(); ++s)
                g.meta[s] = subgroupMeta(r, g_idx, s);
            q.decodeGroup(g, dec);
            size_t len = std::min<size_t>(groupSize, cols_ - base);
            for (size_t i = 0; i < len; ++i)
                out(r, base + i) = dec[i];
        }
    }
    return out;
}

Matrix
PackedM2xfpTensor::unpackWeights(const SgEmQuantizer &q) const
{
    Matrix out(rows_, cols_);
    std::vector<float> dec(groupSize);
    for (size_t r = 0; r < rows_; ++r) {
        for (size_t g_idx = 0; g_idx < groupsPerRow_; ++g_idx) {
            SgEmGroup g;
            size_t slot = r * groupsPerRow_ + g_idx;
            g.scale = ScaleE8m0::fromCode(scales_[slot]);
            g.fp4Codes.resize(groupSize);
            size_t base = g_idx * groupSize;
            for (size_t i = 0; i < groupSize; ++i)
                g.fp4Codes[i] = elementCode(r, base + i);
            g.sgMeta.resize(groupSize / subgroupSize);
            for (size_t s = 0; s < g.sgMeta.size(); ++s)
                g.sgMeta[s] = subgroupMeta(r, g_idx, s);
            q.decodeGroup(g, dec);
            size_t len = std::min<size_t>(groupSize, cols_ - base);
            for (size_t i = 0; i < len; ++i)
                out(r, base + i) = dec[i];
        }
    }
    return out;
}

} // namespace m2x
