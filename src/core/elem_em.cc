#include "core/elem_em.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/stats.hh"

namespace m2x {

namespace {

constexpr uint32_t fp4MagMask = 0x7;  // 3 magnitude bits (E2M1)
constexpr uint32_t fp6MagMask = 0x1f; // 5 magnitude bits (E2M3)

uint32_t
fp4Sign(uint8_t code)
{
    return (code >> 3) & 1u;
}

uint32_t
fp4Mag(uint8_t code)
{
    return code & fp4MagMask;
}

/**
 * Deterministic top-K selection in the FP4 domain, shared verbatim by
 * the encoder and the decoder so both always pick the same elements.
 * Repeatedly takes the top-1 (ties -> lowest index) of a masked copy;
 * stops early if the next pick would repeat (all remaining zero).
 */
std::vector<size_t>
selectTopK(std::span<const uint8_t> codes, unsigned top_k)
{
    std::vector<uint8_t> masked(codes.begin(), codes.end());
    std::vector<size_t> chosen;
    for (unsigned k = 0; k < top_k; ++k) {
        size_t idx = ElemEmQuantizer::top1Index(masked);
        if (std::find(chosen.begin(), chosen.end(), idx) !=
            chosen.end())
            break;
        chosen.push_back(idx);
        masked[idx] = static_cast<uint8_t>(masked[idx] & 0x8u);
    }
    return chosen;
}

} // anonymous namespace

ElemEmQuantizer::ElemEmQuantizer(ElemEmConfig cfg) : cfg_(cfg)
{
    m2x_assert(cfg_.groupSize >= 1, "group size must be positive");
    m2x_assert(cfg_.subgroupSize >= 1 &&
               cfg_.subgroupSize <= cfg_.groupSize,
               "bad subgroup size %u for group %u", cfg_.subgroupSize,
               cfg_.groupSize);
    m2x_assert(cfg_.topK >= 1 && cfg_.topK <= cfg_.subgroupSize,
               "bad topK %u", cfg_.topK);
}

size_t
ElemEmQuantizer::top1Index(std::span<const uint8_t> fp4_codes)
{
    m2x_assert(!fp4_codes.empty(), "empty subgroup");
    size_t best = 0;
    uint32_t best_mag = fp4Mag(fp4_codes[0]);
    for (size_t i = 1; i < fp4_codes.size(); ++i) {
        uint32_t m = fp4Mag(fp4_codes[i]);
        if (m > best_mag) { // strict: ties keep the lowest index
            best_mag = m;
            best = i;
        }
    }
    return best;
}

uint8_t
ElemEmQuantizer::encodeMeta(uint32_t fp6_mag, uint32_t fp4_mag)
{
    uint32_t encoded = fp6_mag + 1;     // Step 6: add bias
    uint32_t range_min = fp4_mag << 2;  // Step 7: fp4_bits|00
    uint32_t range_max = range_min | 3; //         fp4_bits|11
    uint32_t clamped = std::clamp(encoded, range_min, range_max);
    return static_cast<uint8_t>(clamped & 3u);
}

uint32_t
ElemEmQuantizer::decodeFp6Mag(uint32_t fp4_mag, uint8_t meta)
{
    // meta - 1 in {-1, 0, +1, +2}; fp4_mag == 0 forces meta >= 1 by
    // construction so the subtraction never underflows.
    return (fp4_mag << 2) + meta - 1;
}

ElemEmGroup
ElemEmQuantizer::encodeWithScale(std::span<const float> in,
                                 ScaleE8m0 s) const
{
    const Minifloat &fp4 = Minifloat::fp4e2m1();
    const Minifloat &fp6 = Minifloat::fp6e2m3();

    ElemEmGroup g;
    g.scale = s;
    float inv = s.inverse();

    // Step 2: baseline FP4 codes for every element.
    g.fp4Codes.resize(in.size());
    for (size_t i = 0; i < in.size(); ++i)
        g.fp4Codes[i] = static_cast<uint8_t>(fp4.encode(in[i] * inv));

    // Steps 3-7 per subgroup.
    size_t sg = cfg_.subgroupSize;
    for (size_t base = 0; base < in.size(); base += sg) {
        size_t len = std::min(sg, in.size() - base);
        std::span<const uint8_t> codes(g.fp4Codes.data() + base, len);
        std::vector<size_t> chosen = selectTopK(codes, cfg_.topK);

        for (size_t idx : chosen) {
            uint32_t mag4 = fp4Mag(codes[idx]);
            // Step 5: re-round the original value to FP6 E2M3.
            float mag = std::fabs(in[base + idx]) * inv;
            uint32_t mag6 = fp6.encode(mag) & fp6MagMask;
            uint8_t meta;
            if (cfg_.clampBias) {
                meta = encodeMeta(mag6, mag4);
            } else {
                // Ablation: 3-bit bias in {-2..2} (stored +2), the
                // full 5-candidate FP6 window without the alignment
                // clamp.
                int d = static_cast<int>(mag6) -
                        static_cast<int>(mag4 << 2);
                d = std::clamp(d, -2, 2);
                meta = static_cast<uint8_t>(d + 2);
            }
            g.meta.push_back(meta);
        }
        // Pad to topK entries per subgroup so metadata stays
        // uniformly indexable (neutral value decodes to the FP4
        // baseline).
        while (g.meta.size() % cfg_.topK != 0)
            g.meta.push_back(cfg_.clampBias ? 1 : 2);
    }
    return g;
}

void
ElemEmQuantizer::decodeGroup(const ElemEmGroup &g,
                             std::span<float> out) const
{
    const Minifloat &fp4 = Minifloat::fp4e2m1();
    const Minifloat &fp6 = Minifloat::fp6e2m3();
    m2x_assert(out.size() == g.fp4Codes.size(),
               "decode size mismatch: %zu vs %zu", out.size(),
               g.fp4Codes.size());

    float sval = g.scale.value();
    for (size_t i = 0; i < out.size(); ++i)
        out[i] = fp4.decode(g.fp4Codes[i]) * sval;

    size_t sg = cfg_.subgroupSize;
    size_t sg_index = 0;
    for (size_t base = 0; base < out.size(); base += sg, ++sg_index) {
        size_t len = std::min(sg, out.size() - base);
        std::span<const uint8_t> codes(g.fp4Codes.data() + base, len);
        std::vector<size_t> chosen = selectTopK(codes, cfg_.topK);

        for (size_t k = 0; k < chosen.size(); ++k) {
            size_t meta_pos = sg_index * cfg_.topK + k;
            m2x_assert(meta_pos < g.meta.size(),
                       "metadata underrun at subgroup %zu", sg_index);
            size_t idx = chosen[k];
            uint32_t mag4 = fp4Mag(codes[idx]);
            uint32_t sign = fp4Sign(codes[idx]);
            uint8_t meta = g.meta[meta_pos];
            uint32_t mag6;
            if (cfg_.clampBias) {
                mag6 = decodeFp6Mag(mag4, meta);
            } else {
                int d = static_cast<int>(meta) - 2;
                int v = static_cast<int>(mag4 << 2) + d;
                mag6 = static_cast<uint32_t>(std::max(v, 0));
            }
            float mag = fp6.decode(mag6 & fp6MagMask);
            out[base + idx] = (sign ? -mag : mag) * sval;
        }
    }
}

double
ElemEmQuantizer::groupMse(std::span<const float> in,
                          const ElemEmGroup &g) const
{
    std::vector<float> dec(in.size());
    decodeGroup(g, dec);
    double e = 0.0;
    for (size_t i = 0; i < in.size(); ++i) {
        double d = static_cast<double>(dec[i]) - in[i];
        e += d * d;
    }
    return e;
}

ElemEmGroup
ElemEmQuantizer::encodeGroup(std::span<const float> in) const
{
    m2x_assert(in.size() <= cfg_.groupSize,
               "group of %zu exceeds configured size %u", in.size(),
               cfg_.groupSize);
    const Minifloat &fp4 = Minifloat::fp4e2m1();

    // Step 1: shared scale from the block maximum.
    ScaleE8m0 s0 = computeSharedScale(absMax(in), fp4, cfg_.rule);
    if (!cfg_.adaptiveScale)
        return encodeWithScale(in, s0);

    // Adaptive: pick E in {E0-1, E0, E0+1} by group MSE.
    ElemEmGroup best;
    double best_err = -1.0;
    for (int b = -1; b <= 1; ++b) {
        ElemEmGroup g = encodeWithScale(in, s0.shifted(b));
        double err = groupMse(in, g);
        if (best_err < 0.0 || err < best_err) {
            best_err = err;
            best = std::move(g);
        }
    }
    return best;
}

void
ElemEmQuantizer::quantizeGroup(std::span<const float> in,
                               std::span<float> out) const
{
    m2x_assert(in.size() == out.size(), "group size mismatch");
    ElemEmGroup g = encodeGroup(in);
    decodeGroup(g, out);
}

BitBudget
ElemEmQuantizer::bitBudget() const
{
    unsigned n_sub = (cfg_.groupSize + cfg_.subgroupSize - 1) /
                     cfg_.subgroupSize;
    double meta_bits_per_elem = cfg_.clampBias ? 2.0 : 3.0;
    return {4.0, 8.0, meta_bits_per_elem * cfg_.topK * n_sub,
            cfg_.groupSize};
}

std::string
ElemEmQuantizer::name() const
{
    std::string n = "ElemEM-top" + std::to_string(cfg_.topK) + "-g" +
                    std::to_string(cfg_.groupSize) + "/sg" +
                    std::to_string(cfg_.subgroupSize);
    if (cfg_.adaptiveScale)
        n += "-adaptive";
    if (!cfg_.clampBias)
        n += "-wide";
    return n;
}

} // namespace m2x
