/**
 * @file
 * Sg-EM: subgroup-level extra-mantissa quantization for weights
 * (§4.4.2, Eq. 3/4 of the M2XFP paper).
 *
 * Each subgroup of a group refines the shared power-of-two scale
 * S = 2^E by a stored multiplier (1 + k/4), k in {0..3} (2 metadata
 * bits). With the adaptive shared scale enabled, a group-level
 * exponent bias b in {-1, 0, +1} — absorbed into the stored E8M0
 * code, so storage-free — is chosen jointly with the per-subgroup k
 * by hierarchical MSE minimization: first the best k per subgroup
 * given b, then the best b over the summed subgroup errors.
 *
 * A generalized n-bit multiplier grid {1 + j/2^n} and a subgroup
 * extra-*exponent* variant (Sg-EE, offsets {0, -1, ...}) are provided
 * for the Fig. 6/7 design-space exploration.
 */

#ifndef M2X_CORE_SG_EM_HH__
#define M2X_CORE_SG_EM_HH__

#include <cstdint>
#include <vector>

#include "formats/e8m0.hh"
#include "formats/minifloat.hh"
#include "quant/group_quantizer.hh"
#include "quant/scale_rules.hh"

namespace m2x {

/** Bit-level encoding of one Sg-EM group. */
struct SgEmGroup
{
    ScaleE8m0 scale;               //!< stored scale (bias absorbed)
    std::vector<uint8_t> fp4Codes; //!< one 4-bit code per element
    std::vector<uint8_t> sgMeta;   //!< n-bit multiplier code per subgroup
};

/** Configuration for Sg-EM / Sg-EE. */
struct SgEmConfig
{
    unsigned groupSize = 32;
    unsigned subgroupSize = 8;
    unsigned metaBits = 2;       //!< multiplier / offset bits
    bool extraExponent = false;  //!< false: Sg-EM, true: Sg-EE
    ScaleRule rule = ScaleRule::Floor;
    bool adaptiveScale = true;   //!< paper's weight config
};

/** The Sg-EM / Sg-EE codec. */
class SgEmQuantizer : public GroupQuantizer
{
  public:
    explicit SgEmQuantizer(SgEmConfig cfg = {});

    /** Encode one group (in.size() <= groupSize). */
    SgEmGroup encodeGroup(std::span<const float> in) const;

    /** Decode an encoding back to values. */
    void decodeGroup(const SgEmGroup &g, std::span<float> out) const;

    void quantizeGroup(std::span<const float> in,
                       std::span<float> out) const override;

    unsigned groupSize() const override { return cfg_.groupSize; }
    BitBudget bitBudget() const override;
    std::string name() const override;

    const SgEmConfig &config() const { return cfg_; }

    /**
     * The effective subgroup scale for metadata code @p m under
     * stored scale @p s: Sg-EM gives s * (1 + m/2^metaBits); Sg-EE
     * gives s * 2^-m.
     */
    float subgroupScale(ScaleE8m0 s, uint8_t m) const;

    /** Paper's weight format: Sg-EM-2bit, g32/sg8, adaptive. */
    static SgEmQuantizer paperWeights();

  private:
    SgEmConfig cfg_;

    /** Quantize one subgroup under a fixed total scale; returns SSE. */
    double quantizeSubgroup(std::span<const float> in, float scale,
                            std::vector<uint8_t> &codes) const;

    /** Encode with a specific shared scale; returns total SSE. */
    double encodeWithScale(std::span<const float> in, ScaleE8m0 s,
                           SgEmGroup &g) const;
};

} // namespace m2x

#endif // M2X_CORE_SG_EM_HH__
