/**
 * @file
 * Elem-EE: element-level extra-*exponent* metadata — the fourth
 * quadrant of the paper's strategy taxonomy (Fig. 5). Metadata gives
 * the top-1 element of each subgroup an exponent offset, extending
 * its local dynamic range instead of its precision.
 *
 * The paper omits Elem-EE from the Pareto study because exponent
 * offsets cannot fix the block-maximum *rounding* error (§4.2.1,
 * citing the Fig. 3 analysis); we implement it so the full taxonomy
 * is executable and the claim is checkable (see the ablation bench
 * and tests: Elem-EE consistently trails Elem-EM at equal EBW).
 *
 * Encoding: elements quantize to FP4 under the group scale; the
 * top-1 of each subgroup (FP4-domain selection, ties to the lowest
 * index, exactly as Elem-EM) re-quantizes its original value under
 * scale * 2^(meta - bias) with the n-bit offset chosen by minimal
 * absolute error. Decode mirrors the selection and re-applies the
 * offset.
 */

#ifndef M2X_CORE_ELEM_EE_HH__
#define M2X_CORE_ELEM_EE_HH__

#include <cstdint>
#include <vector>

#include "formats/e8m0.hh"
#include "formats/minifloat.hh"
#include "quant/group_quantizer.hh"
#include "quant/scale_rules.hh"

namespace m2x {

/** Configuration for the Elem-EE codec. */
struct ElemEeConfig
{
    unsigned groupSize = 32;
    unsigned subgroupSize = 8;
    unsigned metaBits = 2;   //!< offset bits; offset = meta - bias
    int offsetBias = 2;      //!< meta 0.. maps to -bias..+
    ScaleRule rule = ScaleRule::Floor;
};

/** Bit-level encoding of one Elem-EE group. */
struct ElemEeGroup
{
    ScaleE8m0 scale;
    std::vector<uint8_t> fp4Codes;
    std::vector<uint8_t> meta; //!< n-bit exponent offset per subgroup
};

/** Element-level extra-exponent quantizer. */
class ElemEeQuantizer : public GroupQuantizer
{
  public:
    explicit ElemEeQuantizer(ElemEeConfig cfg = {});

    ElemEeGroup encodeGroup(std::span<const float> in) const;
    void decodeGroup(const ElemEeGroup &g, std::span<float> out) const;

    void quantizeGroup(std::span<const float> in,
                       std::span<float> out) const override;

    unsigned groupSize() const override { return cfg_.groupSize; }
    BitBudget bitBudget() const override;
    std::string name() const override;

    const ElemEeConfig &config() const { return cfg_; }

  private:
    ElemEeConfig cfg_;
};

} // namespace m2x

#endif // M2X_CORE_ELEM_EE_HH__
