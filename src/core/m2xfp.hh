/**
 * @file
 * M2XFP — the paper's production format (§4.3): a hybrid that applies
 *   - Elem-EM-top1 (fixed shared scale) to dynamic activations, and
 *   - Sg-EM-2bit with adaptive shared scale to static weights,
 * both at group size 32 / subgroup size 8 over FP4 E2M1 elements with
 * an E8M0 shared scale. Effective precision: 4.5 bits per element
 * (4 + 8/32 scale + 8/32 metadata).
 *
 * This header is the library's front door: it bundles the two codecs
 * with their paper-default configurations.
 */

#ifndef M2X_CORE_M2XFP_HH__
#define M2X_CORE_M2XFP_HH__

#include <memory>

#include "core/elem_em.hh"
#include "core/sg_em.hh"

namespace m2x {

/** Paper-default configuration knobs for the hybrid format. */
struct M2xfpConfig
{
    unsigned groupSize = 32;
    unsigned subgroupSize = 8;
    ScaleRule rule = ScaleRule::Floor;

    /** Activation codec: Elem-EM-top1, fixed shared scale. */
    ElemEmConfig
    activationConfig() const
    {
        ElemEmConfig c;
        c.groupSize = groupSize;
        c.subgroupSize = subgroupSize;
        c.topK = 1;
        c.rule = rule;
        c.adaptiveScale = false;
        c.clampBias = true;
        return c;
    }

    /** Weight codec: Sg-EM-2bit, adaptive shared scale. */
    SgEmConfig
    weightConfig() const
    {
        SgEmConfig c;
        c.groupSize = groupSize;
        c.subgroupSize = subgroupSize;
        c.metaBits = 2;
        c.extraExponent = false;
        c.rule = rule;
        c.adaptiveScale = true;
        return c;
    }
};

/** The paper-default activation quantizer (Elem-EM-top1). */
inline ElemEmQuantizer
makeM2xfpActivationQuantizer(const M2xfpConfig &cfg = {})
{
    return ElemEmQuantizer(cfg.activationConfig());
}

/** The paper-default weight quantizer (Sg-EM-2bit adaptive). */
inline SgEmQuantizer
makeM2xfpWeightQuantizer(const M2xfpConfig &cfg = {})
{
    return SgEmQuantizer(cfg.weightConfig());
}

} // namespace m2x

#endif // M2X_CORE_M2XFP_HH__
