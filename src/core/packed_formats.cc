/**
 * @file
 * The functional side of the codec-traits seam: per-codec group
 * encode/decode routed through each format's own quantizer, packed
 * into (and recovered from) the shared three-stream layout. These
 * are the scalar bit-exact oracles the runtime kernels are verified
 * against, and the row encoders backing the non-Elem-EM runtime
 * packers.
 *
 * Codec → quantizer pairing:
 *   - elem_em:  Elem-EM-top1 acts, Sg-EM-2bit adaptive weights (the
 *               paper pair — identical streams to packActivations /
 *               packWeights),
 *   - elem_ee:  Elem-EE acts (2-bit exponent offset), Sg-EM weights,
 *   - sg_em:    Sg-EM for both roles (subgroup-multiplier acts),
 *   - m2_nvfp4: M2-NVFP4 acts/weights (g16/sg4, FP8 block scale).
 */

#include <algorithm>
#include <span>
#include <vector>

#include "core/elem_ee.hh"
#include "core/m2_nvfp4.hh"
#include "core/m2xfp.hh"
#include "core/m2xfp_packed.hh"
#include "util/bits.hh"
#include "util/logging.hh"

namespace m2x {

namespace {

/** @{ Per-codec quantizer singletons (paper-default configs). */
const ElemEmQuantizer &
elemEmActQ()
{
    static const ElemEmQuantizer q = makeM2xfpActivationQuantizer();
    return q;
}

const SgEmQuantizer &
sgEmQ()
{
    static const SgEmQuantizer q = SgEmQuantizer::paperWeights();
    return q;
}

const ElemEeQuantizer &
elemEeActQ()
{
    static const ElemEeQuantizer q{ElemEeConfig{}};
    return q;
}

const M2Nvfp4Quantizer &
nvfp4ActQ()
{
    static const M2Nvfp4Quantizer q(false);
    return q;
}

const M2Nvfp4Quantizer &
nvfp4WtQ()
{
    static const M2Nvfp4Quantizer q(true);
    return q;
}
/** @} */

/** Pack a full group's 4-bit codes into nibble bytes (low first). */
void
writeNibbles(const std::vector<uint8_t> &codes, uint8_t *dst,
             unsigned n_bytes)
{
    for (unsigned b = 0; b < n_bytes; ++b)
        dst[b] = static_cast<uint8_t>(
            (codes[2 * b] & 0x0fu) | ((codes[2 * b + 1] & 0x0fu) << 4));
}

/** Unpack nibble bytes back into one 4-bit code per element. */
void
readNibbles(const uint8_t *src, unsigned n_bytes,
            std::vector<uint8_t> &codes)
{
    codes.resize(2 * static_cast<size_t>(n_bytes));
    for (unsigned b = 0; b < n_bytes; ++b) {
        codes[2 * b] = src[b] & 0x0fu;
        codes[2 * b + 1] = src[b] >> 4;
    }
}

/** Fold the per-subgroup 2-bit fields into the metadata byte. */
uint8_t
packMetaByte(const std::vector<uint8_t> &meta)
{
    uint8_t mb = 0;
    for (size_t s = 0; s < meta.size() && s < 4; ++s)
        mb = static_cast<uint8_t>(mb | ((meta[s] & 0x3u) << (2 * s)));
    return mb;
}

void
unpackMetaByte(uint8_t mb, size_t n_sub, std::vector<uint8_t> &meta)
{
    meta.resize(n_sub);
    for (size_t s = 0; s < n_sub; ++s)
        meta[s] = static_cast<uint8_t>((mb >> (2 * s)) & 0x3u);
}

/** Encode one zero-padded group in the activation role. */
void
encodeActGroup(PackedCodec codec, std::span<const float> padded,
               uint8_t *elems, uint8_t *scale, uint8_t *meta)
{
    const PackedCodecInfo &info = packedCodecInfo(codec);
    switch (codec) {
    case PackedCodec::ElemEm: {
        ElemEmGroup g = elemEmActQ().encodeGroup(padded);
        *scale = g.scale.code();
        *meta = packMetaByte(g.meta);
        writeNibbles(g.fp4Codes, elems, info.bytesPerGroupElems);
        break;
    }
    case PackedCodec::ElemEe: {
        ElemEeGroup g = elemEeActQ().encodeGroup(padded);
        *scale = g.scale.code();
        *meta = packMetaByte(g.meta);
        writeNibbles(g.fp4Codes, elems, info.bytesPerGroupElems);
        break;
    }
    case PackedCodec::SgEm: {
        SgEmGroup g = sgEmQ().encodeGroup(padded);
        *scale = g.scale.code();
        *meta = packMetaByte(g.sgMeta);
        writeNibbles(g.fp4Codes, elems, info.bytesPerGroupElems);
        break;
    }
    case PackedCodec::M2Nvfp4: {
        M2Nvfp4Group g = nvfp4ActQ().encodeGroup(padded);
        *scale = g.scaleCode;
        *meta = packMetaByte(g.meta);
        writeNibbles(g.fp4Codes, elems, info.bytesPerGroupElems);
        break;
    }
    }
}

/** Encode one zero-padded group in the weight role. */
void
encodeWtGroup(PackedCodec codec, std::span<const float> padded,
              uint8_t *elems, uint8_t *scale, uint8_t *meta)
{
    const PackedCodecInfo &info = packedCodecInfo(codec);
    switch (codec) {
    case PackedCodec::ElemEm:
    case PackedCodec::ElemEe:
    case PackedCodec::SgEm: {
        // All E8M0-scaled codecs share the paper's Sg-EM weight role.
        SgEmGroup g = sgEmQ().encodeGroup(padded);
        *scale = g.scale.code();
        *meta = packMetaByte(g.sgMeta);
        writeNibbles(g.fp4Codes, elems, info.bytesPerGroupElems);
        break;
    }
    case PackedCodec::M2Nvfp4: {
        M2Nvfp4Group g = nvfp4WtQ().encodeGroup(padded);
        *scale = g.scaleCode;
        *meta = packMetaByte(g.meta);
        writeNibbles(g.fp4Codes, elems, info.bytesPerGroupElems);
        break;
    }
    }
}

/** Decode one group in the activation role. */
void
decodeActGroup(PackedCodec codec, const uint8_t *elems, uint8_t scale,
               uint8_t meta, std::span<float> out)
{
    const PackedCodecInfo &info = packedCodecInfo(codec);
    size_t n_sub = info.groupSize / info.subgroupSize;
    switch (codec) {
    case PackedCodec::ElemEm: {
        ElemEmGroup g;
        g.scale = ScaleE8m0::fromCode(scale);
        readNibbles(elems, info.bytesPerGroupElems, g.fp4Codes);
        unpackMetaByte(meta, n_sub, g.meta);
        elemEmActQ().decodeGroup(g, out);
        break;
    }
    case PackedCodec::ElemEe: {
        ElemEeGroup g;
        g.scale = ScaleE8m0::fromCode(scale);
        readNibbles(elems, info.bytesPerGroupElems, g.fp4Codes);
        unpackMetaByte(meta, n_sub, g.meta);
        elemEeActQ().decodeGroup(g, out);
        break;
    }
    case PackedCodec::SgEm: {
        SgEmGroup g;
        g.scale = ScaleE8m0::fromCode(scale);
        readNibbles(elems, info.bytesPerGroupElems, g.fp4Codes);
        unpackMetaByte(meta, n_sub, g.sgMeta);
        sgEmQ().decodeGroup(g, out);
        break;
    }
    case PackedCodec::M2Nvfp4: {
        M2Nvfp4Group g;
        g.scaleCode = scale;
        readNibbles(elems, info.bytesPerGroupElems, g.fp4Codes);
        unpackMetaByte(meta, n_sub, g.meta);
        nvfp4ActQ().decodeGroup(g, out);
        break;
    }
    }
}

/** Decode one group in the weight role. */
void
decodeWtGroup(PackedCodec codec, const uint8_t *elems, uint8_t scale,
              uint8_t meta, std::span<float> out)
{
    const PackedCodecInfo &info = packedCodecInfo(codec);
    size_t n_sub = info.groupSize / info.subgroupSize;
    switch (codec) {
    case PackedCodec::ElemEm:
    case PackedCodec::ElemEe:
    case PackedCodec::SgEm: {
        SgEmGroup g;
        g.scale = ScaleE8m0::fromCode(scale);
        readNibbles(elems, info.bytesPerGroupElems, g.fp4Codes);
        unpackMetaByte(meta, n_sub, g.sgMeta);
        sgEmQ().decodeGroup(g, out);
        break;
    }
    case PackedCodec::M2Nvfp4: {
        M2Nvfp4Group g;
        g.scaleCode = scale;
        readNibbles(elems, info.bytesPerGroupElems, g.fp4Codes);
        unpackMetaByte(meta, n_sub, g.meta);
        nvfp4WtQ().decodeGroup(g, out);
        break;
    }
    }
}

using EncodeGroupFn = void (*)(PackedCodec, std::span<const float>,
                               uint8_t *, uint8_t *, uint8_t *);

/** One row through the group encoder, zero-padding the tail group. */
void
packRow(PackedCodec codec, EncodeGroupFn encode, const float *src,
        size_t cols, uint8_t *elems, uint8_t *scales, uint8_t *meta)
{
    const PackedCodecInfo &info = packedCodecInfo(codec);
    size_t gs = info.groupSize;
    size_t n_groups = ceilDiv(cols, gs);
    std::vector<float> padded(gs);
    for (size_t g = 0; g < n_groups; ++g) {
        size_t base = g * gs;
        size_t len = std::min<size_t>(gs, cols - base);
        std::fill(padded.begin(), padded.end(), 0.0f);
        std::copy(src + base, src + base + len, padded.begin());
        encode(codec, padded, elems + g * info.bytesPerGroupElems,
               scales + g, meta + g);
    }
}

} // anonymous namespace

void
packActivationRowCodec(PackedCodec codec, const float *src, size_t cols,
                       uint8_t *elems, uint8_t *scales, uint8_t *meta)
{
    packRow(codec, &encodeActGroup, src, cols, elems, scales, meta);
}

void
packWeightRowCodec(PackedCodec codec, const float *src, size_t cols,
                   uint8_t *elems, uint8_t *scales, uint8_t *meta)
{
    packRow(codec, &encodeWtGroup, src, cols, elems, scales, meta);
}

PackedM2xfpTensor
PackedM2xfpTensor::packActivationsCodec(const Matrix &m,
                                        PackedCodec codec)
{
    PackedM2xfpTensor t;
    t.setCodec(codec);
    t.reserveShape(m.rows(), m.cols());
    for (size_t r = 0; r < m.rows(); ++r)
        packActivationRowCodec(
            codec, m.row(r).data(), m.cols(),
            t.elements_.data() +
                r * t.groupsPerRow_ * t.groupElemBytes_,
            t.scales_.data() + r * t.groupsPerRow_,
            t.meta_.data() + r * t.groupsPerRow_);
    return t;
}

PackedM2xfpTensor
PackedM2xfpTensor::packWeightsCodec(const Matrix &m, PackedCodec codec)
{
    PackedM2xfpTensor t;
    t.setCodec(codec);
    t.reserveShape(m.rows(), m.cols());
    for (size_t r = 0; r < m.rows(); ++r)
        packWeightRowCodec(
            codec, m.row(r).data(), m.cols(),
            t.elements_.data() +
                r * t.groupsPerRow_ * t.groupElemBytes_,
            t.scales_.data() + r * t.groupsPerRow_,
            t.meta_.data() + r * t.groupsPerRow_);
    return t;
}

namespace {

using DecodeGroupFn = void (*)(PackedCodec, const uint8_t *, uint8_t,
                               uint8_t, std::span<float>);

Matrix
unpackMatrix(const PackedM2xfpTensor &t, DecodeGroupFn decode)
{
    const PackedCodecInfo &info = t.codecInfo();
    size_t gs = info.groupSize;
    Matrix out(t.rows(), t.cols());
    std::vector<float> dec(gs);
    for (size_t r = 0; r < t.rows(); ++r) {
        for (size_t g = 0; g < t.groupsPerRow(); ++g) {
            decode(t.codec(), t.groupElementBytes(r, g),
                   t.scaleCode(r, g), t.groupMetaByte(r, g), dec);
            size_t base = g * gs;
            size_t len = std::min<size_t>(gs, t.cols() - base);
            for (size_t i = 0; i < len; ++i)
                out(r, base + i) = dec[i];
        }
    }
    return out;
}

} // anonymous namespace

Matrix
PackedM2xfpTensor::unpackActivationsCodec() const
{
    return unpackMatrix(*this, &decodeActGroup);
}

Matrix
PackedM2xfpTensor::unpackWeightsCodec() const
{
    return unpackMatrix(*this, &decodeWtGroup);
}

PackedM2xfpTensor
PackedM2xfpTensor::emptyActivationsCodec(size_t cols, PackedCodec codec)
{
    m2x_assert(cols > 0, "empty activation tensor needs cols > 0");
    PackedM2xfpTensor t;
    t.setCodec(codec);
    t.rows_ = 0;
    t.cols_ = cols;
    t.groupsPerRow_ = ceilDiv(cols, t.codecGroupSize_);
    return t;
}

} // namespace m2x
