#include "core/m2_nvfp4.hh"

#include <algorithm>
#include <cmath>

#include "core/elem_em.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace m2x {

M2Nvfp4Quantizer::M2Nvfp4Quantizer(bool is_weight, unsigned group_size,
                                   unsigned subgroup_size)
    : isWeight_(is_weight), groupSize_(group_size),
      subgroupSize_(subgroup_size)
{
    m2x_assert(subgroup_size >= 1 && subgroup_size <= group_size,
               "bad subgroup size");
}

void
M2Nvfp4Quantizer::calibrate(std::span<const float> full)
{
    float amax = absMax(full);
    tensorScale_ = amax > 0.0f ? amax / (448.0f * 6.0f) : 1.0f;
}

double
M2Nvfp4Quantizer::quantizeWithScale(std::span<const float> in,
                                    std::span<float> out, float s) const
{
    const Minifloat &fp4 = Minifloat::fp4e2m1();
    const Minifloat &fp6 = Minifloat::fp6e2m3();

    double total_err = 0.0;
    for (size_t base = 0; base < in.size(); base += subgroupSize_) {
        size_t len = std::min<size_t>(subgroupSize_, in.size() - base);
        std::span<const float> sub = in.subspan(base, len);
        std::span<float> sub_out = out.subspan(base, len);

        if (isWeight_) {
            // Sg-EM: 2-bit multiplier refining the block scale.
            double best_err = -1.0;
            for (unsigned m = 0; m < 4; ++m) {
                float ss = s * (1.0f + static_cast<float>(m) / 4.0f);
                float inv = 1.0f / ss;
                double err = 0.0;
                float vals[64];
                for (size_t i = 0; i < len; ++i) {
                    vals[i] = fp4.quantize(sub[i] * inv) * ss;
                    double d = static_cast<double>(vals[i]) - sub[i];
                    err += d * d;
                }
                if (best_err < 0.0 || err < best_err) {
                    best_err = err;
                    std::copy(vals, vals + len, sub_out.begin());
                }
            }
            total_err += best_err;
        } else {
            // Elem-EM-top1 under the NVFP4 scale: FP4 everywhere,
            // subgroup max re-rounded to FP6 via the bias-clamp
            // metadata encoding.
            float inv = 1.0f / s;
            uint8_t codes[64];
            for (size_t i = 0; i < len; ++i) {
                codes[i] = static_cast<uint8_t>(
                    fp4.encode(sub[i] * inv));
                sub_out[i] = fp4.decode(codes[i]) * s;
            }
            size_t idx = ElemEmQuantizer::top1Index({codes, len});
            uint32_t mag4 = codes[idx] & 0x7u;
            uint32_t mag6 =
                fp6.encode(std::fabs(sub[idx]) * inv) & 0x1fu;
            uint8_t meta = ElemEmQuantizer::encodeMeta(mag6, mag4);
            uint32_t dec6 = ElemEmQuantizer::decodeFp6Mag(mag4, meta);
            float mag = fp6.decode(dec6);
            bool neg = (codes[idx] >> 3) & 1u;
            sub_out[idx] = (neg ? -mag : mag) * s;
            for (size_t i = 0; i < len; ++i) {
                double d = static_cast<double>(sub_out[i]) - sub[i];
                total_err += d * d;
            }
        }
    }
    return total_err;
}

double
M2Nvfp4Quantizer::encodeWithScale(std::span<const float> in, float s,
                                  M2Nvfp4Group &g) const
{
    const Minifloat &fp4 = Minifloat::fp4e2m1();
    const Minifloat &fp6 = Minifloat::fp6e2m3();

    size_t n_sub = (in.size() + subgroupSize_ - 1) / subgroupSize_;
    g.fp4Codes.assign(in.size(), 0);
    g.meta.assign(n_sub, 0);

    double total_err = 0.0;
    size_t sg_index = 0;
    for (size_t base = 0; base < in.size();
         base += subgroupSize_, ++sg_index) {
        size_t len = std::min<size_t>(subgroupSize_, in.size() - base);
        std::span<const float> sub = in.subspan(base, len);
        uint8_t *sub_codes = g.fp4Codes.data() + base;

        if (isWeight_) {
            // Same m loop as quantizeWithScale — identical err
            // accumulation so the same multiplier wins.
            double best_err = -1.0;
            for (unsigned m = 0; m < 4; ++m) {
                float ss = s * (1.0f + static_cast<float>(m) / 4.0f);
                float inv = 1.0f / ss;
                double err = 0.0;
                uint8_t codes[64];
                for (size_t i = 0; i < len; ++i) {
                    codes[i] = static_cast<uint8_t>(
                        fp4.encode(sub[i] * inv));
                    double d = static_cast<double>(
                                   fp4.decode(codes[i]) * ss) -
                               sub[i];
                    err += d * d;
                }
                if (best_err < 0.0 || err < best_err) {
                    best_err = err;
                    g.meta[sg_index] = static_cast<uint8_t>(m);
                    std::copy(codes, codes + len, sub_codes);
                }
            }
            total_err += best_err;
        } else {
            float inv = 1.0f / s;
            for (size_t i = 0; i < len; ++i)
                sub_codes[i] = static_cast<uint8_t>(
                    fp4.encode(sub[i] * inv));
            size_t idx = ElemEmQuantizer::top1Index({sub_codes, len});
            uint32_t mag4 = sub_codes[idx] & 0x7u;
            uint32_t mag6 =
                fp6.encode(std::fabs(sub[idx]) * inv) & 0x1fu;
            g.meta[sg_index] = ElemEmQuantizer::encodeMeta(mag6, mag4);
            // The err bookkeeping mirrors quantizeWithScale's decoded
            // values (FP4 everywhere, FP6 re-round on the top-1).
            uint32_t dec6 = ElemEmQuantizer::decodeFp6Mag(
                mag4, g.meta[sg_index]);
            float mag = fp6.decode(dec6 & 0x1fu);
            bool neg = (sub_codes[idx] >> 3) & 1u;
            for (size_t i = 0; i < len; ++i) {
                float v = i == idx ? (neg ? -mag : mag) * s
                                   : fp4.decode(sub_codes[i]) * s;
                double d = static_cast<double>(v) - sub[i];
                total_err += d * d;
            }
        }
    }
    return total_err;
}

M2Nvfp4Group
M2Nvfp4Quantizer::encodeGroup(std::span<const float> in) const
{
    m2x_assert(subgroupSize_ <= 64, "subgroup too large");
    m2x_assert(tensorScale_ == 1.0f,
               "packed M2-NVFP4 streams carry no tensor scale — "
               "encodeGroup requires the uncalibrated quantizer");
    const Minifloat &fp8 = Minifloat::fp8e4m3();

    // The zero-amax group takes the same guard path as quantizeGroup's
    // early-out: the minimal positive FP8 scale with all-zero codes
    // decodes to exactly +0.0 everywhere.
    float amax = absMax(in);
    float want = amax / (6.0f * tensorScale_);
    uint32_t code0 = fp8.encode(want);
    if (fp8.decode(code0) <= 0.0f)
        code0 = fp8.encode(fp8.minSubnormal());

    M2Nvfp4Group g;
    if (!isWeight_) {
        g.scaleCode = static_cast<uint8_t>(code0);
        encodeWithScale(in, fp8.decode(code0) * tensorScale_, g);
        return g;
    }

    // Adaptive block scale: the same neighbouring-code search as
    // quantizeGroup, selecting by the identical SSE.
    M2Nvfp4Group tmp;
    double best_err = -1.0;
    for (int d = -1; d <= 1; ++d) {
        int64_t c = static_cast<int64_t>(code0) + d;
        if (c < 0)
            continue;
        float block = fp8.decode(static_cast<uint32_t>(c));
        if (!(block > 0.0f) || std::isnan(block) || std::isinf(block))
            continue;
        double err =
            encodeWithScale(in, block * tensorScale_, tmp);
        if (best_err < 0.0 || err < best_err) {
            best_err = err;
            g = tmp;
            g.scaleCode = static_cast<uint8_t>(c);
        }
    }
    m2x_assert(best_err >= 0.0, "no valid NVFP4 block scale found");
    return g;
}

void
M2Nvfp4Quantizer::decodeGroup(const M2Nvfp4Group &g,
                              std::span<float> out) const
{
    const Minifloat &fp4 = Minifloat::fp4e2m1();
    const Minifloat &fp6 = Minifloat::fp6e2m3();
    const Minifloat &fp8 = Minifloat::fp8e4m3();
    m2x_assert(out.size() == g.fp4Codes.size(),
               "decode size mismatch");

    float s = fp8.decode(g.scaleCode) * tensorScale_;
    size_t sg_index = 0;
    for (size_t base = 0; base < out.size();
         base += subgroupSize_, ++sg_index) {
        size_t len = std::min<size_t>(subgroupSize_,
                                      out.size() - base);
        const uint8_t *sub_codes = g.fp4Codes.data() + base;
        m2x_assert(sg_index < g.meta.size(), "metadata missing");
        uint8_t m = g.meta[sg_index];

        if (isWeight_) {
            float ss = s * (1.0f + static_cast<float>(m) / 4.0f);
            for (size_t i = 0; i < len; ++i)
                out[base + i] = fp4.decode(sub_codes[i]) * ss;
        } else {
            for (size_t i = 0; i < len; ++i)
                out[base + i] = fp4.decode(sub_codes[i]) * s;
            size_t idx = ElemEmQuantizer::top1Index({sub_codes, len});
            uint32_t mag4 = sub_codes[idx] & 0x7u;
            uint32_t dec6 = ElemEmQuantizer::decodeFp6Mag(mag4, m);
            float mag = fp6.decode(dec6 & 0x1fu);
            bool neg = (sub_codes[idx] >> 3) & 1u;
            out[base + idx] = (neg ? -mag : mag) * s;
        }
    }
}

void
M2Nvfp4Quantizer::quantizeGroup(std::span<const float> in,
                                std::span<float> out) const
{
    m2x_assert(in.size() == out.size(), "group size mismatch");
    m2x_assert(subgroupSize_ <= 64, "subgroup too large");
    const Minifloat &fp8 = Minifloat::fp8e4m3();

    float amax = absMax(in);
    if (amax == 0.0f) {
        std::fill(out.begin(), out.end(), 0.0f);
        return;
    }
    float want = amax / (6.0f * tensorScale_);
    uint32_t code0 = fp8.encode(want);
    if (fp8.decode(code0) <= 0.0f)
        code0 = fp8.encode(fp8.minSubnormal());

    if (!isWeight_) {
        float s = fp8.decode(code0) * tensorScale_;
        quantizeWithScale(in, out, s);
        return;
    }

    // Adaptive block scale for weights: try the FP8 code and its
    // neighbours (the NVFP4 analogue of the E8M0 exponent bias).
    std::vector<float> tmp(in.size());
    double best_err = -1.0;
    uint32_t mag_mask = (1u << 8) - 1; // fp8 code space (sign incl.)
    (void)mag_mask;
    for (int d = -1; d <= 1; ++d) {
        int64_t c = static_cast<int64_t>(code0) + d;
        if (c < 0)
            continue;
        float block = fp8.decode(static_cast<uint32_t>(c));
        if (!(block > 0.0f) || std::isnan(block) || std::isinf(block))
            continue;
        float s = block * tensorScale_;
        double err = quantizeWithScale(in, tmp, s);
        if (best_err < 0.0 || err < best_err) {
            best_err = err;
            std::copy(tmp.begin(), tmp.end(), out.begin());
        }
    }
    m2x_assert(best_err >= 0.0, "no valid NVFP4 block scale found");
}

BitBudget
M2Nvfp4Quantizer::bitBudget() const
{
    unsigned n_sub = (groupSize_ + subgroupSize_ - 1) / subgroupSize_;
    return {4.0, 8.0, 2.0 * n_sub, groupSize_};
}

std::string
M2Nvfp4Quantizer::name() const
{
    return std::string("M2-NVFP4-") + (isWeight_ ? "W" : "A") + "-g" +
           std::to_string(groupSize_) + "/sg" +
           std::to_string(subgroupSize_);
}

} // namespace m2x
