/**
 * @file
 * Bit-level packed memory layout for M2XFP tensors (§5.2).
 *
 * Each group of 32 elements occupies three fixed-length fields kept
 * in three separate contiguous streams (alignment-friendly, no
 * fragmentation vs baseline MXFP):
 *   - 128-bit block of packed 4-bit element codes (16 bytes),
 *   - one 8-bit E8M0 shared scale,
 *   - one 8-bit metadata byte (4 subgroups x 2 bits; subgroup 0 in
 *     the low bits).
 * The same layout serves both roles: for activations the metadata
 * bits are the Elem-EM extra mantissas, for weights they are the
 * Sg-EM subgroup-scale multipliers.
 */

#ifndef M2X_CORE_M2XFP_PACKED_HH__
#define M2X_CORE_M2XFP_PACKED_HH__

#include <cstdint>
#include <vector>

#include "core/elem_em.hh"
#include "core/packed_codec.hh"
#include "core/sg_em.hh"
#include "quant/matrix.hh"

namespace m2x {

namespace runtime {
class ThreadPool;
enum class SimdIsa;
} // namespace runtime

/**
 * A matrix packed into the three M2XFP byte streams.
 *
 * Since the codec-traits seam the same class carries every
 * PackedCodec: the codec fixes the group geometry (group size,
 * nibble bytes per group) and the meaning of the scale/metadata
 * bytes, while the three-stream layout — and therefore every stream
 * accessor — is codec-independent. The Elem-EM entry points below
 * (packActivations/packWeights/unpack*) are the original paper-pair
 * API and stay byte-for-byte what they always were; the *Codec entry
 * points generalize them over the format axis.
 */
class PackedM2xfpTensor
{
  public:
    /** @{ Paper (Elem-EM pair) geometry; codec-aware callers use
     *  codecInfo() instead. */
    static constexpr unsigned groupSize = 32;
    static constexpr unsigned subgroupSize = 8;
    static constexpr unsigned bytesPerGroupElems = 16;
    /** @} */

    /** Pack a row-major matrix as activations (Elem-EM-top1). */
    static PackedM2xfpTensor packActivations(const Matrix &m,
                                             const ElemEmQuantizer &q);

    /** @{
     * Fast-path online packing: byte-identical streams to
     * packActivations(m, q), produced by the runtime encoder
     * (src/runtime/packed_quantize) — per-ISA SIMD kernels,
     * parallelized over rows on @p pool (null = the global pool).
     * Requires the fixed-shared-scale paper activation config
     * (adaptiveScale off — asserted). The into-variant reuses
     * @p out's stream storage across calls, so a steady-state
     * forward pass allocates nothing. Defined in the m2x_runtime
     * library; callers must link m2x::m2x_runtime.
     */
    static PackedM2xfpTensor packActivations(const Matrix &m,
                                             const ElemEmQuantizer &q,
                                             runtime::ThreadPool *pool,
                                             runtime::SimdIsa isa);
    static void packActivations(const Matrix &m,
                                const ElemEmQuantizer &q,
                                runtime::ThreadPool *pool,
                                runtime::SimdIsa isa,
                                PackedM2xfpTensor &out);
    /** @} */

    /** @{
     * Growable activation-role tensor — the KV-cache substrate. An
     * empty tensor is created with a fixed column count, then rows
     * are appended incrementally: each append encodes @p n_rows
     * contiguous row-major rows (of cols() floats each) through the
     * fast-path encoder straight onto the tails of the three streams.
     * Amortized O(1) per row (vector doubling); existing bytes are
     * never rewritten, so zero-copy group accessors stay valid for
     * all previously appended rows. Same config restrictions as the
     * fast-path packActivations (asserted). Multi-row appends
     * (prefill chunks) distribute the row encodes over @p pool
     * (null = the global pool) exactly like packActivations;
     * single-row appends skip the pool. appendActivationRows is
     * defined in the m2x_runtime library.
     */
    static PackedM2xfpTensor emptyActivations(size_t cols,
                                              const ElemEmQuantizer &q);
    void appendActivationRows(const float *rows, size_t n_rows,
                              const ElemEmQuantizer &q,
                              runtime::SimdIsa isa,
                              runtime::ThreadPool *pool = nullptr);
    /** @} */

    /** @{
     * Storage-recycling hooks for pooled owners (the KV page arena):
     * reserveActivationRows pre-sizes the three stream capacities
     * for @p rows rows so subsequent appends never reallocate, and
     * clearActivationRows drops the rows while keeping the stream
     * capacity, so a recycled tensor refills allocation-free. Only
     * meaningful on growable activation tensors (emptyActivations).
     */
    void reserveActivationRows(size_t rows);
    void clearActivationRows();
    /** @} */

    /** Pack a row-major matrix as weights (Sg-EM-2bit adaptive). */
    static PackedM2xfpTensor packWeights(const Matrix &m,
                                         const SgEmQuantizer &q);

    /** @{
     * Codec-generic functional packers/unpackers: the scalar
     * bit-exact oracle of every registered format, built on each
     * codec's own encodeGroup/decodeGroup with the same zero-padded
     * tail handling as the Elem-EM packers. For PackedCodec::ElemEm
     * they produce byte-identical streams to packActivations /
     * packWeights with the paper quantizers. Defined in
     * core/packed_formats.cc.
     */
    static PackedM2xfpTensor packActivationsCodec(const Matrix &m,
                                                  PackedCodec codec);
    static PackedM2xfpTensor packWeightsCodec(const Matrix &m,
                                              PackedCodec codec);
    Matrix unpackActivationsCodec() const;
    Matrix unpackWeightsCodec() const;
    /** @} */

    /** @{
     * Codec-generic runtime packing (defined in the m2x_runtime
     * library): Elem-EM routes through the per-ISA SIMD encoder,
     * every other codec through its functional row encoder
     * parallelized over rows — byte-exact against the functional
     * packers on every tier by construction. emptyActivationsCodec /
     * appendActivationRowsCodec are the growable KV-cache shape of
     * the same seam.
     */
    static PackedM2xfpTensor packActivationsCodec(
        const Matrix &m, PackedCodec codec, runtime::ThreadPool *pool,
        runtime::SimdIsa isa);
    static void packActivationsCodec(const Matrix &m,
                                     PackedCodec codec,
                                     runtime::ThreadPool *pool,
                                     runtime::SimdIsa isa,
                                     PackedM2xfpTensor &out);
    static PackedM2xfpTensor emptyActivationsCodec(size_t cols,
                                                   PackedCodec codec);
    void appendActivationRowsCodec(const float *rows, size_t n_rows,
                                   runtime::SimdIsa isa,
                                   runtime::ThreadPool *pool = nullptr);
    /** @} */

    /**
     * Assemble a tensor directly from the three raw byte streams
     * (sizes must match the [rows, cols] group layout of @p codec —
     * asserted). This bypasses the quantizers entirely: it exists for
     * deserialization and for tests that need exhaustive control of
     * the stream bytes (e.g. the SIMD decode sweeps), so the caller
     * is responsible for the streams holding valid codes.
     */
    static PackedM2xfpTensor fromRawStreams(
        size_t rows, size_t cols, std::vector<uint8_t> elements,
        std::vector<uint8_t> scales, std::vector<uint8_t> meta,
        PackedCodec codec = PackedCodec::ElemEm);

    /** Reconstruct the dequantized matrix (activation layout). */
    Matrix unpackActivations(const ElemEmQuantizer &q) const;

    /** Reconstruct the dequantized matrix (weight layout). */
    Matrix unpackWeights(const SgEmQuantizer &q) const;

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }
    size_t groupsPerRow() const { return groupsPerRow_; }

    /** @{ The format axis: this tensor's codec and its geometry. */
    PackedCodec codec() const { return codec_; }
    const PackedCodecInfo &codecInfo() const
    {
        return packedCodecInfo(codec_);
    }
    /** @} */

    /** @{ Raw streams (exposed for the memory-traffic model). */
    const std::vector<uint8_t> &elementStream() const
    {
        return elements_;
    }
    const std::vector<uint8_t> &scaleStream() const { return scales_; }
    const std::vector<uint8_t> &metadataStream() const { return meta_; }
    /** @} */

    /** Total packed bytes across all three streams. */
    size_t totalBytes() const
    {
        return elements_.size() + scales_.size() + meta_.size();
    }

    /** Effective bits per (unpadded) element. */
    double bitsPerElement() const;

    /** Fetch the 4-bit code of element (r, c). */
    uint8_t elementCode(size_t r, size_t c) const;

    /** Fetch the 2-bit metadata of (row, group, subgroup). */
    uint8_t subgroupMeta(size_t r, size_t group, size_t sub) const;

    /** Fetch the E8M0 scale code of (row, group). */
    uint8_t scaleCode(size_t r, size_t group) const;

    /** @{
     * Zero-copy group accessors for the packed-domain execution
     * runtime (src/runtime): the 16 packed element bytes and the
     * metadata byte of (row, group), straight from the streams.
     */
    const uint8_t *
    groupElementBytes(size_t r, size_t group) const
    {
        return elements_.data() +
               (r * groupsPerRow_ + group) * groupElemBytes_;
    }
    uint8_t
    groupMetaByte(size_t r, size_t group) const
    {
        return meta_[r * groupsPerRow_ + group];
    }
    /** @} */

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    size_t groupsPerRow_ = 0;
    PackedCodec codec_ = PackedCodec::ElemEm;
    /** @{ Geometry cache of codec_ (hot accessors avoid the info
     *  lookup). */
    unsigned codecGroupSize_ = groupSize;
    unsigned groupElemBytes_ = bytesPerGroupElems;
    /** @} */
    std::vector<uint8_t> elements_;
    std::vector<uint8_t> scales_;
    std::vector<uint8_t> meta_;

    /** Set codec_ and refresh the geometry cache. */
    void setCodec(PackedCodec codec);

    void setElementCode(size_t r, size_t c, uint8_t code);
    void reserveShape(size_t rows, size_t cols);

    /**
     * Reshape for the fast-path packer, reusing existing stream
     * storage when capacity allows. Unlike reserveShape the streams
     * are not zero-filled: the encoder kernels write every byte of
     * every group (tail groups included).
     */
    void resizeShape(size_t rows, size_t cols);
};

/** @{
 * Functional one-row stream encoders of the codec seam: encode
 * @p cols floats into the row's group slots (ceil(cols/groupSize)
 * groups of element bytes, scale codes and metadata bytes for
 * @p codec's geometry), zero-padding the tail group exactly like the
 * matrix packers. These are the per-codec analogue of the runtime's
 * QuantizeRowFn — byte-exact on every ISA tier by construction —
 * and the building block of the parallel codec packers. Defined in
 * core/packed_formats.cc.
 */
void packActivationRowCodec(PackedCodec codec, const float *src,
                            size_t cols, uint8_t *elems,
                            uint8_t *scales, uint8_t *meta);
void packWeightRowCodec(PackedCodec codec, const float *src,
                        size_t cols, uint8_t *elems, uint8_t *scales,
                        uint8_t *meta);
/** @} */

} // namespace m2x

#endif // M2X_CORE_M2XFP_PACKED_HH__
