#include "core/sg_em.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/stats.hh"

namespace m2x {

SgEmQuantizer::SgEmQuantizer(SgEmConfig cfg) : cfg_(cfg)
{
    m2x_assert(cfg_.groupSize >= 1, "group size must be positive");
    m2x_assert(cfg_.subgroupSize >= 1 &&
               cfg_.subgroupSize <= cfg_.groupSize,
               "bad subgroup size %u for group %u", cfg_.subgroupSize,
               cfg_.groupSize);
    m2x_assert(cfg_.metaBits >= 1 && cfg_.metaBits <= 4,
               "bad metadata width %u", cfg_.metaBits);
}

SgEmQuantizer
SgEmQuantizer::paperWeights()
{
    return SgEmQuantizer(SgEmConfig{});
}

float
SgEmQuantizer::subgroupScale(ScaleE8m0 s, uint8_t m) const
{
    if (cfg_.extraExponent) {
        // Sg-EE: the subgroup shifts down by m binades (the group
        // scale already covers the block maximum, so offsets only
        // ever need to shrink).
        return s.value() * std::exp2(-static_cast<float>(m));
    }
    float frac = static_cast<float>(m) /
                 std::exp2(static_cast<float>(cfg_.metaBits));
    return s.value() * (1.0f + frac);
}

double
SgEmQuantizer::quantizeSubgroup(std::span<const float> in, float scale,
                                std::vector<uint8_t> &codes) const
{
    const Minifloat &fp4 = Minifloat::fp4e2m1();
    float inv = 1.0f / scale;
    double err = 0.0;
    codes.resize(in.size());
    for (size_t i = 0; i < in.size(); ++i) {
        uint32_t c = fp4.encode(in[i] * inv);
        codes[i] = static_cast<uint8_t>(c);
        double v = static_cast<double>(fp4.decode(c)) * scale;
        double d = v - in[i];
        err += d * d;
    }
    return err;
}

double
SgEmQuantizer::encodeWithScale(std::span<const float> in, ScaleE8m0 s,
                               SgEmGroup &g) const
{
    g.scale = s;
    g.fp4Codes.assign(in.size(), 0);
    g.sgMeta.clear();

    unsigned n_codes = 1u << cfg_.metaBits;
    size_t sg = cfg_.subgroupSize;
    double total_err = 0.0;
    std::vector<uint8_t> codes, best_codes;
    for (size_t base = 0; base < in.size(); base += sg) {
        size_t len = std::min(sg, in.size() - base);
        std::span<const float> sub = in.subspan(base, len);

        double best_err = -1.0;
        uint8_t best_m = 0;
        for (unsigned m = 0; m < n_codes; ++m) {
            float scale = subgroupScale(s, static_cast<uint8_t>(m));
            double err = quantizeSubgroup(sub, scale, codes);
            if (best_err < 0.0 || err < best_err) {
                best_err = err;
                best_m = static_cast<uint8_t>(m);
                best_codes = codes;
            }
        }
        std::copy(best_codes.begin(), best_codes.end(),
                  g.fp4Codes.begin() + base);
        g.sgMeta.push_back(best_m);
        total_err += best_err;
    }
    return total_err;
}

SgEmGroup
SgEmQuantizer::encodeGroup(std::span<const float> in) const
{
    m2x_assert(in.size() <= cfg_.groupSize,
               "group of %zu exceeds configured size %u", in.size(),
               cfg_.groupSize);
    const Minifloat &fp4 = Minifloat::fp4e2m1();
    ScaleE8m0 s0 = computeSharedScale(absMax(in), fp4, cfg_.rule);

    SgEmGroup best;
    if (!cfg_.adaptiveScale) {
        encodeWithScale(in, s0, best);
        return best;
    }

    // Eq. 4: hierarchical MSE minimization — per-subgroup k* given
    // each bias b, then the best group-level b. The winning bias is
    // absorbed into the stored scale.
    double best_err = -1.0;
    for (int b = -1; b <= 1; ++b) {
        SgEmGroup g;
        double err = encodeWithScale(in, s0.shifted(b), g);
        if (best_err < 0.0 || err < best_err) {
            best_err = err;
            best = std::move(g);
        }
    }
    return best;
}

void
SgEmQuantizer::decodeGroup(const SgEmGroup &g,
                           std::span<float> out) const
{
    const Minifloat &fp4 = Minifloat::fp4e2m1();
    m2x_assert(out.size() == g.fp4Codes.size(),
               "decode size mismatch: %zu vs %zu", out.size(),
               g.fp4Codes.size());
    size_t sg = cfg_.subgroupSize;
    size_t sg_index = 0;
    for (size_t base = 0; base < out.size(); base += sg, ++sg_index) {
        size_t len = std::min(sg, out.size() - base);
        m2x_assert(sg_index < g.sgMeta.size(), "subgroup meta missing");
        float scale = subgroupScale(g.scale, g.sgMeta[sg_index]);
        for (size_t i = 0; i < len; ++i)
            out[base + i] = fp4.decode(g.fp4Codes[base + i]) * scale;
    }
}

void
SgEmQuantizer::quantizeGroup(std::span<const float> in,
                             std::span<float> out) const
{
    m2x_assert(in.size() == out.size(), "group size mismatch");
    SgEmGroup g = encodeGroup(in);
    decodeGroup(g, out);
}

BitBudget
SgEmQuantizer::bitBudget() const
{
    unsigned n_sub = (cfg_.groupSize + cfg_.subgroupSize - 1) /
                     cfg_.subgroupSize;
    return {4.0, 8.0, static_cast<double>(cfg_.metaBits) * n_sub,
            cfg_.groupSize};
}

std::string
SgEmQuantizer::name() const
{
    std::string n = cfg_.extraExponent ? "SgEE" : "SgEM";
    n += '-';
    n += std::to_string(cfg_.metaBits);
    n += "b-g";
    n += std::to_string(cfg_.groupSize);
    n += "/sg";
    n += std::to_string(cfg_.subgroupSize);
    if (cfg_.adaptiveScale)
        n += "-adaptive";
    return n;
}

} // namespace m2x
