/**
 * @file
 * M2-NVFP4 (Tbl. 6): the paper's metadata augmentation applied on top
 * of NVFP4. The block scale stays NVFP4's FP8(E4M3) x FP32 tensor
 * scale (group 16); metadata is added per 4-element subgroup:
 *   - activations: Elem-EM-top1 (2-bit extra mantissa on the subgroup
 *     max, bias-clamp encoded),
 *   - weights: Sg-EM-2bit multiplier with an adaptive block-scale
 *     search over neighbouring FP8 codes.
 * With group 16 and subgroup 4 the metadata adds 8 bits per group,
 * raising the effective width from 4.5 to 5 bits — the overhead the
 * paper calls out.
 */

#ifndef M2X_CORE_M2_NVFP4_HH__
#define M2X_CORE_M2_NVFP4_HH__

#include <cstdint>
#include <vector>

#include "formats/minifloat.hh"
#include "quant/group_quantizer.hh"

namespace m2x {

/** Bit-level encoding of one M2-NVFP4 group. */
struct M2Nvfp4Group
{
    uint8_t scaleCode = 0;         //!< FP8 E4M3 block-scale code
    std::vector<uint8_t> fp4Codes; //!< one 4-bit code per element
    std::vector<uint8_t> meta;     //!< 2-bit metadata per subgroup
};

/** NVFP4 + M2XFP metadata. One instance per tensor role. */
class M2Nvfp4Quantizer : public GroupQuantizer
{
  public:
    /**
     * @param is_weight  weights use Sg-EM + adaptive FP8 scale;
     *                   activations use Elem-EM-top1 (fixed scale)
     * @param group_size NVFP4 block size (16)
     * @param subgroup_size metadata granule (4)
     */
    explicit M2Nvfp4Quantizer(bool is_weight, unsigned group_size = 16,
                              unsigned subgroup_size = 4);

    void calibrate(std::span<const float> full) override;

    /**
     * @{ Bit-level group encoding for the packed runtime: the same
     * pipeline as quantizeGroup (block-scale guard, adaptive FP8
     * code search for weights, Elem-EM-top1 metadata for
     * activations), but returning the stored codes instead of the
     * dequantized floats. decodeGroup(encodeGroup(x)) reproduces
     * quantizeGroup(x) bit-exactly — asserted by the codec-traits
     * property tests. Requires the uncalibrated tensor scale (1.0);
     * the packed streams have no per-tensor scale slot.
     */
    M2Nvfp4Group encodeGroup(std::span<const float> in) const;
    void decodeGroup(const M2Nvfp4Group &g, std::span<float> out) const;
    /** @} */

    void quantizeGroup(std::span<const float> in,
                       std::span<float> out) const override;

    unsigned groupSize() const override { return groupSize_; }
    BitBudget bitBudget() const override;
    std::string name() const override;

  private:
    bool isWeight_;
    unsigned groupSize_;
    unsigned subgroupSize_;
    float tensorScale_ = 1.0f;

    /** Quantize with a given block scale; returns the group SSE. */
    double quantizeWithScale(std::span<const float> in,
                             std::span<float> out, float s) const;

    /**
     * Encode with a given block scale; returns the group SSE. The
     * float-op sequence mirrors quantizeWithScale exactly so the
     * adaptive-scale winner selection is identical.
     */
    double encodeWithScale(std::span<const float> in, float s,
                           M2Nvfp4Group &g) const;
};

} // namespace m2x

#endif // M2X_CORE_M2_NVFP4_HH__
