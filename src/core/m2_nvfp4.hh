/**
 * @file
 * M2-NVFP4 (Tbl. 6): the paper's metadata augmentation applied on top
 * of NVFP4. The block scale stays NVFP4's FP8(E4M3) x FP32 tensor
 * scale (group 16); metadata is added per 4-element subgroup:
 *   - activations: Elem-EM-top1 (2-bit extra mantissa on the subgroup
 *     max, bias-clamp encoded),
 *   - weights: Sg-EM-2bit multiplier with an adaptive block-scale
 *     search over neighbouring FP8 codes.
 * With group 16 and subgroup 4 the metadata adds 8 bits per group,
 * raising the effective width from 4.5 to 5 bits — the overhead the
 * paper calls out.
 */

#ifndef M2X_CORE_M2_NVFP4_HH__
#define M2X_CORE_M2_NVFP4_HH__

#include "formats/minifloat.hh"
#include "quant/group_quantizer.hh"

namespace m2x {

/** NVFP4 + M2XFP metadata. One instance per tensor role. */
class M2Nvfp4Quantizer : public GroupQuantizer
{
  public:
    /**
     * @param is_weight  weights use Sg-EM + adaptive FP8 scale;
     *                   activations use Elem-EM-top1 (fixed scale)
     * @param group_size NVFP4 block size (16)
     * @param subgroup_size metadata granule (4)
     */
    explicit M2Nvfp4Quantizer(bool is_weight, unsigned group_size = 16,
                              unsigned subgroup_size = 4);

    void calibrate(std::span<const float> full) override;

    void quantizeGroup(std::span<const float> in,
                       std::span<float> out) const override;

    unsigned groupSize() const override { return groupSize_; }
    BitBudget bitBudget() const override;
    std::string name() const override;

  private:
    bool isWeight_;
    unsigned groupSize_;
    unsigned subgroupSize_;
    float tensorScale_ = 1.0f;

    /** Quantize with a given block scale; returns the group SSE. */
    double quantizeWithScale(std::span<const float> in,
                             std::span<float> out, float s) const;
};

} // namespace m2x

#endif // M2X_CORE_M2_NVFP4_HH__
