/**
 * @file
 * Bit-exact model of the streaming Quantization Engine (Fig. 12).
 *
 * The engine quantizes activations online in a two-stage pipeline:
 *   stage 1 (Scaling & Normalize Unit): max-reduce the group,
 *     derive the E8M0 shared scale, normalize every element
 *     (exponent subtraction) and emit FP4 + FP6 candidate codes via
 *     threshold comparison networks (RNE boundaries);
 *   stage 2 (Encode Unit): top-1 identification (reusing the decode
 *     unit's comparator tree), the +1-bias / clamp metadata encoding,
 *     and packing into the three M2XFP streams.
 *
 * The model produces results bit-identical to the functional
 * ElemEmQuantizer (verified in tests) and reports a cycle count from
 * the pipeline shape (deterministic, stall-free — the property §5.5
 * claims).
 */

#ifndef M2X_HW_QUANT_ENGINE_HH__
#define M2X_HW_QUANT_ENGINE_HH__

#include <cstdint>
#include <span>
#include <vector>

#include "core/elem_em.hh"
#include "hw/top1_decode.hh"

namespace m2x {
namespace hw {

/** Result of pushing one group through the engine. */
struct QuantEngineResult
{
    ElemEmGroup group;   //!< bit-level encoding (scale, codes, meta)
    unsigned cycles;     //!< pipeline cycles consumed
};

/** The two-stage streaming quantization engine. */
class QuantizationEngine
{
  public:
    /**
     * @param lanes elements processed per cycle per stage (32 in the
     *        paper's configuration: one group per cycle per stage)
     */
    explicit QuantizationEngine(unsigned lanes = 32);

    /** Quantize one activation group (paper config: 32/sg 8). */
    QuantEngineResult encodeGroup(std::span<const float> in) const;

    /**
     * Steady-state throughput: cycles to stream @p n_groups groups
     * through the two-stage pipeline.
     */
    unsigned streamCycles(size_t n_groups) const;

    unsigned lanes() const { return lanes_; }

  private:
    unsigned lanes_;
    Top1DecodeUnit top1_;

    /**
     * Threshold-network RNE encode of a nonnegative magnitude onto a
     * minifloat grid; returns the magnitude code. Models the
     * comparator chain the RTL uses instead of a divider.
     */
    static uint32_t encodeMagnitudeRne(float mag,
                                       const Minifloat &fmt);
};

} // namespace hw
} // namespace m2x

#endif // M2X_HW_QUANT_ENGINE_HH__
