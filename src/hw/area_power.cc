#include "hw/area_power.hh"

namespace m2x {
namespace hw {

UnitModel::UnitModel(std::string name, std::vector<LogicBlock> blocks)
    : name_(std::move(name)), blocks_(std::move(blocks))
{}

double
UnitModel::areaUm2() const
{
    double a = 0.0;
    for (const auto &b : blocks_)
        a += b.areaUm2();
    return a;
}

double
UnitModel::powerMw() const
{
    double p = 0.0;
    for (const auto &b : blocks_)
        p += b.powerMw();
    return p;
}

namespace {

/**
 * Shared baseline FP4 MAC datapath (present in every PE variant):
 * eight 4x4 sign-magnitude multipliers, the 8-input adder tree, the
 * 32-bit fixed-point accumulator, the dequantize/exponent-align
 * stage and the operand/pipeline registers.
 */
std::vector<LogicBlock>
baseFp4MacBlocks()
{
    return {
        {"fp4_multipliers_x8", 360.0},
        {"adder_tree_8to1", 320.0},
        {"fxp32_accumulator", 640.0},
        {"dequant_exponent_align", 780.0},
        {"operand_pipeline_regs", 2099.2},
    };
}

} // anonymous namespace

UnitModel
makeMxfp4PeTile()
{
    return {"PE tile (MXFP4)", baseFp4MacBlocks()};
}

UnitModel
makeNvfp4PeTile()
{
    auto blocks = baseFp4MacBlocks();
    // NVFP4 replaces the shift-only E8M0 dequant with an FP8 (E4M3)
    // block-scale multiply into the accumulation path (+2.3%).
    blocks.push_back({"fp8_scale_multiplier", 96.1});
    return {"PE tile (NVFP4)", std::move(blocks)};
}

UnitModel
makeM2xfpPeTile()
{
    auto blocks = baseFp4MacBlocks();
    // M2XFP extensions (Fig. 11): the auxiliary extra-mantissa MAC,
    // the shift-add subgroup scaler, and metadata routing (+4.0%).
    blocks.push_back({"aux_extra_mantissa_mac", 78.0});
    blocks.push_back({"subgroup_shift_add_scaler", 60.4});
    blocks.push_back({"metadata_routing", 30.0});
    return {"PE tile (M2XFP)", std::move(blocks)};
}

UnitModel
makeTop1DecodeUnit()
{
    return {"Top-1 Decode Unit",
            {
                {"fp4_to_uint_lut", 24.0},
                {"comparator_tree_3lvl", 98.0},
                {"bias_adjust_and_packer", 47.2},
            }};
}

UnitModel
makeQuantizationEngine()
{
    return {"Quantization Engine",
            {
                {"max_reduce_tree_32", 682.0},
                {"exponent_extract", 160.0},
                {"normalize_shifters_x32", 1280.0},
                {"fp4_threshold_nets_x32", 768.0},
                {"fp6_threshold_nets_x32", 1152.0},
                {"top1_encode_clamp_x4", 220.0},
                {"pack_output_regs", 741.0},
            }};
}

double
SramModel::areaMm2() const
{
    // Linear CACTI-like fit anchored at the paper's 324 KB point
    // (0.7740 mm^2).
    return 0.0023889 * capacityKb;
}

double
SramModel::powerMw() const
{
    // 176.268 mW at 324 KB (read-dominated activity at 500 MHz).
    return 0.544037 * capacityKb;
}

double
SramModel::energyPerBytePj() const
{
    // Access energy grows mildly with bank capacity.
    return 2.0 + 0.004 * capacityKb;
}

namespace {

/** Per-unit switching-activity factors calibrating Tbl. 5 power. */
constexpr double peActivity = 0.358;
constexpr double decodeActivity = 0.703;
constexpr double engineActivity = 0.981;
/** Full-activity gate power at 500 MHz, mW (see Tech28nm). */
constexpr double fullGatePowerMw = 1.35e-4;

double
unitPowerMw(const UnitModel &u, double activity)
{
    double gates = u.areaUm2() / Tech28nm::gateAreaUm2;
    return gates * fullGatePowerMw * activity;
}

} // anonymous namespace

std::vector<ComponentRow>
table5Breakdown()
{
    UnitModel pe = makeM2xfpPeTile();
    UnitModel dec = makeTop1DecodeUnit();
    UnitModel qe = makeQuantizationEngine();
    SramModel buf{324.0};

    std::vector<ComponentRow> rows;
    rows.push_back({"PE Tile", pe.areaUm2(), 128,
                    pe.areaUm2() * 128 * 1e-6,
                    unitPowerMw(pe, peActivity) * 128});
    rows.push_back({"Top-1 Decode Unit", dec.areaUm2(), 4,
                    dec.areaUm2() * 4 * 1e-6,
                    unitPowerMw(dec, decodeActivity) * 4});
    rows.push_back({"Quantization Engine", qe.areaUm2(), 1,
                    qe.areaUm2() * 1e-6,
                    unitPowerMw(qe, engineActivity)});
    rows.push_back({"Buffer (324KB)", 0.0, 1, buf.areaMm2(),
                    buf.powerMw()});

    double ta = 0.0, tp = 0.0;
    for (const auto &r : rows) {
        ta += r.totalAreaMm2;
        tp += r.totalPowerMw;
    }
    rows.push_back({"Total", 0.0, 1, ta, tp});
    return rows;
}

} // namespace hw
} // namespace m2x
