#include "hw/pe_tile.hh"

#include <cmath>

#include "formats/minifloat.hh"
#include "util/logging.hh"

namespace m2x {
namespace hw {

PeTile::PeTile()
{
    const Minifloat &fp4 = Minifloat::fp4e2m1();
    const Minifloat &fp6 = Minifloat::fp6e2m3();
    for (uint32_t code = 0; code < 16; ++code) {
        float v = fp4.decode(code);
        fp4Int8_[code] = static_cast<int8_t>(std::lround(v * 8.0f));
    }
    for (uint32_t mag = 0; mag < 32; ++mag) {
        float v = fp6.decode(mag);
        fp6MagInt8_[mag] = static_cast<int8_t>(std::lround(v * 8.0f));
    }
}

int64_t
PeTile::macSubgroup(const PeSubgroupInput &in) const
{
    m2x_assert(in.len >= 1 && in.len <= 8, "bad subgroup length %u",
               in.len);

    // Base path: eight FP4 x FP4 products into the adder tree.
    int64_t base64 = 0; // value * 64
    for (unsigned i = 0; i < in.len; ++i) {
        int w = fp4Int8_[in.wCodes[i] & 0xf];
        int x = fp4Int8_[in.xCodes[i] & 0xf];
        base64 += static_cast<int64_t>(w) * x;
        ++ops_.baseMacs;
    }

    // Aux path: the top-1 activation's extra-mantissa correction,
    // W[idx] * deltaX. The decode unit reconstructs the FP6 code.
    Top1Decode t = decode_.decode({in.xCodes.data(), in.len},
                                  in.xMeta);
    int x4 = fp4Int8_[in.xCodes[t.idx] & 0xf];
    int x6_mag = fp6MagInt8_[t.fp6Mag];
    int x6 = t.negative ? -x6_mag : x6_mag;
    int dx = x6 - x4; // value * 8; fits in 7 bits + sign
    int w_top = fp4Int8_[in.wCodes[t.idx] & 0xf];
    int64_t aux64 = static_cast<int64_t>(w_top) * dx;
    ++ops_.auxMacs;

    // Two extra fraction bits so the downstream shift-add subgroup
    // refinement is exact.
    return (base64 + aux64) * 4; // value * 256
}

int64_t
PeTile::applySubgroupScale(int64_t p256, uint8_t sg_em)
{
    m2x_assert(p256 % 4 == 0, "partial sum not aligned for shift-add");
    switch (sg_em & 0x3) {
      case 0:
        return p256;
      case 1:
        return p256 + (p256 >> 2); // * 1.25
      case 2:
        return p256 + (p256 >> 1); // * 1.5
      default:
        return p256 + (p256 >> 1) + (p256 >> 2); // * 1.75
    }
}

double
PeTile::computeGroup(std::span<const PeSubgroupInput> subgroups,
                     int w_scale_exp, int x_scale_exp) const
{
    int64_t acc256 = 0;
    for (const PeSubgroupInput &sg : subgroups) {
        int64_t p = macSubgroup(sg);
        acc256 += applySubgroupScale(p, sg.wSgEm);
        ++ops_.scaleOps;
    }
    ++ops_.dequants;
    // Dequantize: value*256 -> value, then the two power-of-two
    // shared scales (pure exponent alignment for E8M0).
    return std::ldexp(static_cast<double>(acc256),
                      w_scale_exp + x_scale_exp - 8);
}

} // namespace hw
} // namespace m2x
