#include "hw/quant_engine.hh"

#include <algorithm>
#include <cmath>

#include "quant/scale_rules.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace m2x {
namespace hw {

QuantizationEngine::QuantizationEngine(unsigned lanes) : lanes_(lanes)
{
    m2x_assert(lanes >= 1, "engine needs at least one lane");
}

uint32_t
QuantizationEngine::encodeMagnitudeRne(float mag, const Minifloat &fmt)
{
    // Comparator chain against the RNE decision boundaries: value
    // belongs to code i+1 once it passes the midpoint; the exact
    // midpoint goes to whichever neighbour has an even code.
    const std::vector<float> &vals = fmt.positiveValues();
    uint32_t code = 0;
    for (uint32_t i = 0; i + 1 < vals.size(); ++i) {
        float mid = 0.5f * (vals[i] + vals[i + 1]);
        bool up;
        if (mag > mid)
            up = true;
        else if (mag < mid)
            up = false;
        else
            up = ((i + 1) & 1u) == 0; // tie: even code wins
        if (up)
            code = i + 1;
        else
            break;
    }
    return code;
}

QuantEngineResult
QuantizationEngine::encodeGroup(std::span<const float> in) const
{
    const Minifloat &fp4 = Minifloat::fp4e2m1();
    const Minifloat &fp6 = Minifloat::fp6e2m3();
    constexpr unsigned sg_size = 8;

    QuantEngineResult res;
    ElemEmGroup &g = res.group;

    // --- Stage 1: Scaling & Normalize Unit -------------------------
    // Max reduction, shared-scale derivation (OCP floor rule), and
    // normalization. The normalization is an exponent subtraction in
    // hardware; multiplying by the exact power of two is equivalent.
    float amax = absMax(in);
    g.scale = computeSharedScale(amax, fp4, ScaleRule::Floor);
    float inv = g.scale.inverse();

    // FP4 and FP6 candidate codes for every element (two threshold
    // networks in parallel).
    g.fp4Codes.resize(in.size());
    std::vector<uint8_t> fp6_codes(in.size());
    for (size_t i = 0; i < in.size(); ++i) {
        float norm = in[i] * inv;
        float mag = std::fabs(norm);
        uint32_t sign = std::signbit(norm) ? 1u : 0u;
        uint32_t c4 = encodeMagnitudeRne(mag, fp4);
        uint32_t c6 = encodeMagnitudeRne(mag, fp6);
        g.fp4Codes[i] = static_cast<uint8_t>((sign << 3) | c4);
        fp6_codes[i] = static_cast<uint8_t>(c6);
    }

    // --- Stage 2: Encode Unit ---------------------------------------
    // Top-1 per subgroup via the comparator tree, then the +1 bias
    // and clamp (Alg. 1 steps 6-7).
    for (size_t base = 0; base < in.size(); base += sg_size) {
        size_t len = std::min<size_t>(sg_size, in.size() - base);
        Top1Decode t =
            top1_.decode({g.fp4Codes.data() + base, len}, 1);
        uint32_t fp4_mag = t.fp4Mag;
        uint32_t fp6_mag = fp6_codes[base + t.idx];
        uint32_t encoded = fp6_mag + 1;
        uint32_t lo = fp4_mag << 2;
        uint32_t hi = lo | 3;
        uint32_t clamped = std::clamp(encoded, lo, hi);
        g.meta.push_back(static_cast<uint8_t>(clamped & 3u));
    }

    // Pipeline: each stage handles `lanes_` elements per cycle; the
    // stages overlap, so one group costs fill + drain.
    unsigned per_stage = static_cast<unsigned>(
        (in.size() + lanes_ - 1) / lanes_);
    res.cycles = 2 * per_stage;
    return res;
}

unsigned
QuantizationEngine::streamCycles(size_t n_groups) const
{
    if (n_groups == 0)
        return 0;
    // Steady state: one group per `ceil(32/lanes)` cycles after the
    // two-stage fill.
    unsigned per_stage = (32 + lanes_ - 1) / lanes_;
    return static_cast<unsigned>(per_stage * (n_groups + 1));
}

} // namespace hw
} // namespace m2x
