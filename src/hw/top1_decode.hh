/**
 * @file
 * Bit-exact model of the Top-1 Decode Unit (Fig. 10).
 *
 * The unit preprocesses an 8-element FP4 subgroup before it enters
 * the PE array:
 *  1. an FP4-to-UINT lookup table maps each 4-bit code to a value
 *     that is monotonic in magnitude (sign stripped), enabling plain
 *     unsigned comparisons;
 *  2. a three-level comparator tree finds the unique top-1; on equal
 *     values the comparator keeps the lower index (left input), so
 *     the result is deterministic and matches the encoder (Alg. 1);
 *  3. the "-1" stage reconstructs the FP6 magnitude code from the
 *     element's FP4 code and the 2-bit metadata
 *     (fp6 = fp4*4 + meta - 1) and packs (idx, val, delta) for the
 *     PE's auxiliary extra-mantissa path.
 *
 * Every step is modelled at the same granularity the RTL would use
 * (LUT reads, comparator nodes), and the unit's outputs are tested
 * bit-for-bit against the functional ElemEmQuantizer decoder.
 */

#ifndef M2X_HW_TOP1_DECODE_HH__
#define M2X_HW_TOP1_DECODE_HH__

#include <array>
#include <cstdint>
#include <span>

namespace m2x {
namespace hw {

/** Output bundle forwarded to the PE tile. */
struct Top1Decode
{
    uint8_t idx;     //!< top-1 position within the subgroup [0, 7]
    uint8_t fp4Mag;  //!< its FP4 magnitude code [0, 7]
    uint8_t fp6Mag;  //!< reconstructed FP6 magnitude code [0, 30]
    bool negative;   //!< sign of the top-1 element
    /**
     * Extra-mantissa delta in FP6 grid steps relative to the FP4
     * value: fp6 - fp4*4 in {-1, 0, +1, +2} (meta - 1).
     */
    int8_t deltaUlp6;
};

/** The decode unit: stateless combinational logic. */
class Top1DecodeUnit
{
  public:
    Top1DecodeUnit();

    /**
     * Process one subgroup.
     * @param fp4_codes up to 8 sign-magnitude FP4 codes
     * @param meta the subgroup's 2-bit metadata
     */
    Top1Decode decode(std::span<const uint8_t> fp4_codes,
                      uint8_t meta) const;

    /** The FP4-to-UINT LUT (exposed for tests). */
    const std::array<uint8_t, 16> &lut() const { return lut_; }

    /** Comparator evaluations consumed by the last decode() call. */
    unsigned comparatorOps() const { return comparatorOps_; }

  private:
    /** lut_[code] = magnitude key for monotonic comparison. */
    std::array<uint8_t, 16> lut_;
    mutable unsigned comparatorOps_ = 0;
};

} // namespace hw
} // namespace m2x

#endif // M2X_HW_TOP1_DECODE_HH__
