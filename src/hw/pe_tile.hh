/**
 * @file
 * Bit-exact model of the M2XFP processing element tile (Fig. 11).
 *
 * One PE tile processes an 8-element subgroup per cycle:
 *   - eight parallel FP4 x FP4 multipliers + adder tree (base path),
 *   - a lightweight auxiliary MAC computing W x deltaX for the top-1
 *     activation's extra mantissa (hidden bit of deltaX is zero, so
 *     the correction reuses FP4-width hardware),
 *   - shift-add subgroup-scale refinement: the 2-bit weight Sg-EM
 *     code scales the partial sum by 1.0 / 1.25 / 1.5 / 1.75
 *     (P + P>>2, P + P>>1, P + P>>1 + P>>2),
 *   - dequantize-and-accumulate: exponent alignment by the two E8M0
 *     shared scales.
 *
 * All arithmetic is integer. FP4/FP6 magnitudes are multiples of 1/8,
 * so operands are held as value*8 integers; products are kept in
 * value*256 fixed point (two extra fraction bits) which makes the
 * shift-add refinement exact. The tile's result is proven bit-equal
 * to the functional codecs' dequantized dot product in the tests.
 */

#ifndef M2X_HW_PE_TILE_HH__
#define M2X_HW_PE_TILE_HH__

#include <array>
#include <cstdint>
#include <span>

#include "hw/top1_decode.hh"

namespace m2x {
namespace hw {

/** One subgroup's operands as they arrive from the buffers. */
struct PeSubgroupInput
{
    std::array<uint8_t, 8> wCodes{}; //!< weight FP4 codes
    std::array<uint8_t, 8> xCodes{}; //!< activation FP4 codes
    uint8_t xMeta = 1;  //!< activation Elem-EM metadata (2 bits)
    uint8_t wSgEm = 0;  //!< weight Sg-EM multiplier code (2 bits)
    uint8_t len = 8;    //!< valid lanes
};

/** Cumulative operation counters (for the energy model). */
struct PeOpCounts
{
    uint64_t baseMacs = 0;
    uint64_t auxMacs = 0;
    uint64_t scaleOps = 0;
    uint64_t dequants = 0;
};

/** The PE tile datapath. */
class PeTile
{
  public:
    PeTile();

    /**
     * Base + aux MAC for one subgroup, before subgroup-scale
     * refinement. Returns the partial sum in value*256 fixed point.
     */
    int64_t macSubgroup(const PeSubgroupInput &in) const;

    /**
     * Apply the Sg-EM multiplier to a partial sum via shift-add.
     * @pre p256 is a multiple of 4 (guaranteed by the datapath).
     */
    static int64_t applySubgroupScale(int64_t p256, uint8_t sg_em);

    /**
     * Full group dot product: subgroup MACs, per-subgroup scale
     * refinement, accumulation, and dequantization by the two shared
     * scale exponents. Exact (double) result.
     */
    double computeGroup(std::span<const PeSubgroupInput> subgroups,
                        int w_scale_exp, int x_scale_exp) const;

    const PeOpCounts &opCounts() const { return ops_; }
    void resetOpCounts() { ops_ = {}; }

    /** value*8 of an FP4 sign-magnitude code (exposed for tests). */
    int fp4Int8(uint8_t code) const { return fp4Int8_[code & 0xf]; }
    /** value*8 of an FP6 magnitude code. */
    int fp6MagInt8(uint8_t mag) const { return fp6MagInt8_[mag & 0x1f]; }

  private:
    Top1DecodeUnit decode_;
    std::array<int8_t, 16> fp4Int8_;
    std::array<int8_t, 32> fp6MagInt8_;
    mutable PeOpCounts ops_;
};

} // namespace hw
} // namespace m2x

#endif // M2X_HW_PE_TILE_HH__
