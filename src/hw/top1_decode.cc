#include "hw/top1_decode.hh"

#include "util/logging.hh"

namespace m2x {
namespace hw {

Top1DecodeUnit::Top1DecodeUnit()
{
    // The magnitude key is simply the low 3 bits of the sign-magnitude
    // FP4 code: E2M1 codes are already ordered by magnitude, so the
    // LUT's job in hardware is just to strip the sign bit. We model
    // it as a real 16-entry table as in Fig. 10.
    for (uint32_t code = 0; code < 16; ++code)
        lut_[code] = static_cast<uint8_t>(code & 0x7u);
}

Top1Decode
Top1DecodeUnit::decode(std::span<const uint8_t> fp4_codes,
                       uint8_t meta) const
{
    m2x_assert(!fp4_codes.empty() && fp4_codes.size() <= 8,
               "decode unit handles 1..8 codes, got %zu",
               fp4_codes.size());
    comparatorOps_ = 0;

    // Stage 1: LUT lookups.
    struct Entry
    {
        uint8_t val;
        uint8_t idx;
    };
    Entry lanes[8];
    size_t n = fp4_codes.size();
    for (size_t i = 0; i < 8; ++i) {
        // Missing lanes (short tail subgroups) present magnitude 0,
        // which can never displace a real element (ties keep lower
        // index).
        uint8_t code = i < n ? fp4_codes[i] : 0;
        lanes[i] = {lut_[code & 0xfu], static_cast<uint8_t>(i)};
    }

    // Stage 2: three-level comparator tree; >= keeps the left (lower
    // index) input, matching Alg. 1's tie rule.
    Entry level[8];
    for (int i = 0; i < 8; ++i)
        level[i] = lanes[i];
    size_t width = 8;
    while (width > 1) {
        for (size_t i = 0; i < width / 2; ++i) {
            const Entry &l = level[2 * i];
            const Entry &r = level[2 * i + 1];
            ++comparatorOps_;
            level[i] = (l.val >= r.val) ? l : r;
        }
        width /= 2;
    }
    Entry top = level[0];

    // Stage 3: metadata application (the "-1" box): reconstruct the
    // FP6 magnitude code.
    uint8_t code = top.idx < n ? fp4_codes[top.idx] : 0;
    uint8_t fp4_mag = static_cast<uint8_t>(code & 0x7u);
    int fp6 = static_cast<int>(fp4_mag) * 4 + (meta & 0x3) - 1;
    m2x_assert(fp6 >= 0 && fp6 <= 30,
               "reconstructed FP6 code %d out of range", fp6);

    Top1Decode out;
    out.idx = top.idx;
    out.fp4Mag = fp4_mag;
    out.fp6Mag = static_cast<uint8_t>(fp6);
    out.negative = (code >> 3) & 1u;
    out.deltaUlp6 = static_cast<int8_t>((meta & 0x3) - 1);
    return out;
}

} // namespace hw
} // namespace m2x
