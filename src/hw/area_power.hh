/**
 * @file
 * Analytic area/power model for the M2XFP accelerator components
 * (Tbl. 5) and the per-format PE-tile comparison (§6.3).
 *
 * Substitution note (DESIGN.md §3): the paper synthesizes RTL with
 * Design Compiler on TSMC 28 nm at 500 MHz and models buffers with
 * CACTI v7. Offline we use a gate-count accounting: every datapath
 * subcomponent is assigned a NAND2-equivalent gate count, converted
 * with a 28 nm gate area/power factor; SRAM uses a capacity-linear
 * fit. The per-unit constants are anchored so the totals reproduce
 * the paper's synthesized numbers, and the *relative* costs (what
 * Fig. 13 and the PE comparison need) follow from the structure.
 */

#ifndef M2X_HW_AREA_POWER_HH__
#define M2X_HW_AREA_POWER_HH__

#include <string>
#include <vector>

namespace m2x {
namespace hw {

/** 28 nm standard-cell conversion factors @ 500 MHz. */
struct Tech28nm
{
    /** NAND2-equivalent gate area, um^2 (incl. routing overhead). */
    static constexpr double gateAreaUm2 = 0.49;
    /** Dynamic + leakage power per gate at 500 MHz, mW. */
    static constexpr double gatePowerMw = 9.86e-5;
};

/** One logic subcomponent: a named gate-count entry. */
struct LogicBlock
{
    std::string name;
    double gates; //!< NAND2-equivalent count

    double areaUm2() const { return gates * Tech28nm::gateAreaUm2; }
    double powerMw() const { return gates * Tech28nm::gatePowerMw; }
};

/** A hardware unit composed of logic blocks. */
class UnitModel
{
  public:
    UnitModel(std::string name, std::vector<LogicBlock> blocks);

    double areaUm2() const;
    double powerMw() const;
    const std::string &name() const { return name_; }
    const std::vector<LogicBlock> &blocks() const { return blocks_; }

  private:
    std::string name_;
    std::vector<LogicBlock> blocks_;
};

/** @{ The synthesized units of §6.3, with Tbl. 5-calibrated totals. */
UnitModel makeM2xfpPeTile();   //!< 2140.1 um^2
UnitModel makeMxfp4PeTile();   //!< 2057.6 um^2 (no aux MAC/scaler)
UnitModel makeNvfp4PeTile();   //!< 2104.7 um^2 (FP8 scale multiply)
UnitModel makeTop1DecodeUnit(); //!< 82.91 um^2
UnitModel makeQuantizationEngine(); //!< 2451.47 um^2
/** @} */

/** CACTI-like SRAM model: linear in capacity (28 nm, 1 RW port). */
struct SramModel
{
    double capacityKb; //!< kilobytes

    double areaMm2() const;
    double powerMw() const;
    /** Dynamic read/write energy per byte, pJ. */
    double energyPerBytePj() const;
};

/** One row of the Tbl. 5 accounting. */
struct ComponentRow
{
    std::string name;
    double unitAreaUm2;
    unsigned count;
    double totalAreaMm2;
    double totalPowerMw;
};

/** The full Tbl. 5 accounting: 128 PE tiles, 4 decoders, 1 engine,
 *  324 KB of buffers. */
std::vector<ComponentRow> table5Breakdown();

} // namespace hw
} // namespace m2x

#endif // M2X_HW_AREA_POWER_HH__
