/**
 * @file
 * Deterministic random number generation.
 *
 * Every experiment in this repository must be bit-reproducible across
 * runs and platforms, so we ship our own xoshiro256** generator instead
 * of relying on std::mt19937 + libstdc++ distribution internals (the
 * standard distributions are not bit-portable across library versions).
 */

#ifndef M2X_UTIL_RNG_HH__
#define M2X_UTIL_RNG_HH__

#include <cstdint>
#include <vector>

namespace m2x {

/**
 * xoshiro256** 1.0 with splitmix64 seeding. Passes BigCrush; tiny state.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed via splitmix64. */
    void reseed(uint64_t seed);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0 */
    uint64_t uniformInt(uint64_t n);

    /** Standard normal via Box-Muller (deterministic, cached pair). */
    double normal();

    /** Normal with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /**
     * Student-t sample with @p dof degrees of freedom. Heavy-tailed;
     * used to mimic LLM activation outliers.
     */
    double studentT(double dof);

    /** Log-normal: exp(normal(mu, sigma)). */
    double logNormal(double mu, double sigma);

    /** Fill @p out with standard normal samples. */
    void fillNormal(std::vector<float> &out, float mean, float stddev);

    /** Fisher-Yates shuffle of indices [0, n). */
    std::vector<uint32_t> permutation(uint32_t n);

    /** Derive an independent child generator (stable across versions). */
    Rng fork();

  private:
    uint64_t s_[4];
    bool haveCached_ = false;
    double cached_ = 0.0;
};

} // namespace m2x

#endif // M2X_UTIL_RNG_HH__
