/**
 * @file
 * Small bit-manipulation helpers shared by the format codecs and the
 * bit-exact hardware models.
 */

#ifndef M2X_UTIL_BITS_HH__
#define M2X_UTIL_BITS_HH__

#include <cstdint>

namespace m2x {

/** Extract bits [lo, lo+len) of @p v. */
constexpr uint32_t
bitsField(uint32_t v, unsigned lo, unsigned len)
{
    return (v >> lo) & ((len >= 32 ? 0u : (1u << len)) - 1u);
}

/** Insert @p field into bits [lo, lo+len) of @p v. */
constexpr uint32_t
bitsInsert(uint32_t v, unsigned lo, unsigned len, uint32_t field)
{
    uint32_t mask = ((len >= 32 ? 0u : (1u << len)) - 1u) << lo;
    return (v & ~mask) | ((field << lo) & mask);
}

/** Floor of log2 for a positive integer. */
constexpr int
floorLog2(uint64_t v)
{
    int r = -1;
    while (v) {
        v >>= 1;
        ++r;
    }
    return r;
}

/** Integer ceil division. */
constexpr uint64_t
ceilDiv(uint64_t a, uint64_t b)
{
    return (a + b - 1) / b;
}

/** Round @p a up to a multiple of @p b. */
constexpr uint64_t
roundUp(uint64_t a, uint64_t b)
{
    return ceilDiv(a, b) * b;
}

} // namespace m2x

#endif // M2X_UTIL_BITS_HH__
