#include "util/stats.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace m2x {

double
mean(std::span<const float> x)
{
    m2x_assert(!x.empty(), "mean of empty span");
    double s = 0.0;
    for (float v : x)
        s += v;
    return s / static_cast<double>(x.size());
}

double
variance(std::span<const float> x)
{
    double m = mean(x);
    double s = 0.0;
    for (float v : x)
        s += (v - m) * (v - m);
    return s / static_cast<double>(x.size());
}

float
absMax(std::span<const float> x)
{
    float m = 0.0f;
    for (float v : x)
        m = std::max(m, std::fabs(v));
    return m;
}

double
mse(std::span<const float> a, std::span<const float> b)
{
    m2x_assert(a.size() == b.size(), "mse size mismatch: %zu vs %zu",
               a.size(), b.size());
    m2x_assert(!a.empty(), "mse of empty span");
    double s = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
        s += d * d;
    }
    return s / static_cast<double>(a.size());
}

double
nmse(std::span<const float> ref, std::span<const float> approx)
{
    double num = mse(ref, approx);
    double den = 0.0;
    for (float v : ref)
        den += static_cast<double>(v) * static_cast<double>(v);
    den /= static_cast<double>(ref.size());
    if (den == 0.0)
        return num == 0.0 ? 0.0 : 1e30;
    return num / den;
}

double
sqnrDb(std::span<const float> ref, std::span<const float> approx)
{
    double e = nmse(ref, approx);
    if (e <= 0.0)
        return 300.0; // effectively lossless
    return -10.0 * std::log10(e);
}

double
cosineSimilarity(std::span<const float> a, std::span<const float> b)
{
    m2x_assert(a.size() == b.size(), "cosine size mismatch");
    double dot = 0.0, na = 0.0, nb = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        dot += static_cast<double>(a[i]) * b[i];
        na += static_cast<double>(a[i]) * a[i];
        nb += static_cast<double>(b[i]) * b[i];
    }
    if (na == 0.0 && nb == 0.0)
        return 1.0;
    if (na == 0.0 || nb == 0.0)
        return 0.0;
    return dot / (std::sqrt(na) * std::sqrt(nb));
}

void
softmax(std::span<const float> logits, std::span<float> out)
{
    m2x_assert(logits.size() == out.size(), "softmax size mismatch");
    float mx = -std::numeric_limits<float>::infinity();
    for (float v : logits)
        mx = std::max(mx, v);
    double z = 0.0;
    for (size_t i = 0; i < logits.size(); ++i) {
        out[i] = std::exp(logits[i] - mx);
        z += out[i];
    }
    for (auto &v : out)
        v = static_cast<float>(v / z);
}

double
klDivergenceLogits(std::span<const float> p_logits,
                   std::span<const float> q_logits)
{
    m2x_assert(p_logits.size() == q_logits.size(), "kl size mismatch");
    size_t n = p_logits.size();
    std::vector<float> p(n), q(n);
    softmax(p_logits, p);
    softmax(q_logits, q);
    double kl = 0.0;
    for (size_t i = 0; i < n; ++i) {
        double pi = std::max<double>(p[i], 1e-12);
        double qi = std::max<double>(q[i], 1e-12);
        kl += pi * std::log(pi / qi);
    }
    return std::max(kl, 0.0);
}

} // namespace m2x
