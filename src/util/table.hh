/**
 * @file
 * Minimal ASCII table printer so every bench binary can emit the same
 * rows/columns the paper's tables and figures report.
 */

#ifndef M2X_UTIL_TABLE_HH__
#define M2X_UTIL_TABLE_HH__

#include <string>
#include <vector>

namespace m2x {

/**
 * Column-aligned text table. Cells are strings; helpers format numbers.
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Append a fully formed row. @pre row.size() == header.size() */
    void addRow(std::vector<std::string> row);

    /** Begin an incremental row. */
    void beginRow();
    /** Append one cell to the row under construction. */
    void cell(const std::string &s);
    /** Append a numeric cell with @p digits decimals. */
    void cell(double v, int digits = 2);
    /** Finish the row under construction. */
    void endRow();

    /** Render with column alignment and a header rule. */
    std::string render() const;

    /** Render straight to stdout with an optional caption line. */
    void print(const std::string &caption = "") const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<std::string> pending_;
    bool inRow_ = false;
};

/** Format a double with fixed decimals (helper for bench output). */
std::string fmtNum(double v, int digits = 2);

} // namespace m2x

#endif // M2X_UTIL_TABLE_HH__
