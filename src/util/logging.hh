/**
 * @file
 * Error-reporting helpers in the gem5 tradition.
 *
 * panic()  — an internal invariant was violated; this is a library bug.
 *            Aborts (so a debugger/core dump sees the failure point).
 * fatal()  — the user asked for something impossible (bad configuration,
 *            inconsistent shapes, ...). Exits with status 1.
 * warn()   — something is suspicious but the run can continue.
 * inform() — plain status output.
 */

#ifndef M2X_UTIL_LOGGING_HH__
#define M2X_UTIL_LOGGING_HH__

#include <cstdio>
#include <cstdlib>
#include <string>

namespace m2x {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const char *file, int line, const std::string &msg);
void informImpl(const std::string &msg);

/** Printf-style formatting into a std::string. */
std::string strFormat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace m2x

#define m2x_panic(...) \
    ::m2x::panicImpl(__FILE__, __LINE__, ::m2x::strFormat(__VA_ARGS__))
#define m2x_fatal(...) \
    ::m2x::fatalImpl(__FILE__, __LINE__, ::m2x::strFormat(__VA_ARGS__))
#define m2x_warn(...) \
    ::m2x::warnImpl(__FILE__, __LINE__, ::m2x::strFormat(__VA_ARGS__))
#define m2x_inform(...) \
    ::m2x::informImpl(::m2x::strFormat(__VA_ARGS__))

/** Assert that must also hold in release builds (used for invariants). */
#define m2x_assert(cond, ...)                                           \
    do {                                                                 \
        if (!(cond)) {                                                   \
            ::m2x::panicImpl(__FILE__, __LINE__,                         \
                             ::m2x::strFormat(__VA_ARGS__));             \
        }                                                                \
    } while (0)

#endif // M2X_UTIL_LOGGING_HH__
