/**
 * @file
 * Error metrics used throughout the evaluation: MSE / NMSE / SQNR /
 * cosine similarity on tensors, and KL divergence between logit rows.
 */

#ifndef M2X_UTIL_STATS_HH__
#define M2X_UTIL_STATS_HH__

#include <cstddef>
#include <span>
#include <vector>

namespace m2x {

/** Arithmetic mean. @pre non-empty */
double mean(std::span<const float> x);

/** Population variance. @pre non-empty */
double variance(std::span<const float> x);

/** Largest absolute value (0 for empty input). */
float absMax(std::span<const float> x);

/** Mean squared error between two equally sized spans. */
double mse(std::span<const float> a, std::span<const float> b);

/** MSE normalized by the reference energy: mse(a, ref) / mean(ref^2). */
double nmse(std::span<const float> ref, std::span<const float> approx);

/** Signal-to-quantization-noise ratio in dB (10 log10 (1 / nmse)). */
double sqnrDb(std::span<const float> ref, std::span<const float> approx);

/** Cosine similarity; returns 1 when both inputs are all-zero. */
double cosineSimilarity(std::span<const float> a, std::span<const float> b);

/**
 * Softmax of @p logits into @p out (numerically stabilized).
 * @pre out.size() == logits.size()
 */
void softmax(std::span<const float> logits, std::span<float> out);

/**
 * KL(softmax(p_logits) || softmax(q_logits)) in nats.
 * Used by the proxy-perplexity evaluator (DESIGN.md §3).
 */
double klDivergenceLogits(std::span<const float> p_logits,
                          std::span<const float> q_logits);

/** Simple accumulating mean helper. */
class RunningMean
{
  public:
    void add(double v) { sum_ += v; ++n_; }
    double value() const { return n_ ? sum_ / static_cast<double>(n_) : 0; }
    size_t count() const { return n_; }

  private:
    double sum_ = 0.0;
    size_t n_ = 0;
};

} // namespace m2x

#endif // M2X_UTIL_STATS_HH__
