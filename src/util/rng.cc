#include "util/rng.hh"

#include <cmath>

#include "util/logging.hh"

namespace m2x {

namespace {

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

void
Rng::reseed(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
    haveCached_ = false;
}

uint64_t
Rng::next()
{
    uint64_t result = rotl(s_[1] * 5, 7) * 9;
    uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::uniformInt(uint64_t n)
{
    m2x_assert(n > 0, "uniformInt needs n > 0");
    // Rejection sampling to remove modulo bias.
    uint64_t threshold = (0 - n) % n;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % n;
    }
}

double
Rng::normal()
{
    if (haveCached_) {
        haveCached_ = false;
        return cached_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    u2 = uniform();
    double r = std::sqrt(-2.0 * std::log(u1));
    double a = 2.0 * M_PI * u2;
    cached_ = r * std::sin(a);
    haveCached_ = true;
    return r * std::cos(a);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::studentT(double dof)
{
    m2x_assert(dof > 0.0, "studentT needs dof > 0");
    // t = N / sqrt(ChiSq(dof) / dof); ChiSq built from dof normals is
    // slow for large dof, so use the gamma-free approximation via
    // Bailey's polar method: t = sqrt(dof (u^{-2/dof} - 1)) * cos(2 pi v)
    double u, v;
    do {
        u = uniform();
    } while (u <= 1e-300);
    v = uniform();
    double w = std::sqrt(dof * (std::pow(u, -2.0 / dof) - 1.0));
    return w * std::cos(2.0 * M_PI * v);
}

double
Rng::logNormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

void
Rng::fillNormal(std::vector<float> &out, float mean, float stddev)
{
    for (auto &x : out)
        x = static_cast<float>(normal(mean, stddev));
}

std::vector<uint32_t>
Rng::permutation(uint32_t n)
{
    std::vector<uint32_t> p(n);
    for (uint32_t i = 0; i < n; ++i)
        p[i] = i;
    for (uint32_t i = n; i > 1; --i) {
        uint32_t j = static_cast<uint32_t>(uniformInt(i));
        std::swap(p[i - 1], p[j]);
    }
    return p;
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xa5a5a5a55a5a5a5aull);
}

} // namespace m2x
