#include "util/table.hh"

#include <algorithm>
#include <cstdio>

#include "util/logging.hh"

namespace m2x {

std::string
fmtNum(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
    m2x_assert(!header_.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> row)
{
    m2x_assert(row.size() == header_.size(),
               "row has %zu cells, header has %zu", row.size(),
               header_.size());
    rows_.push_back(std::move(row));
}

void
TextTable::beginRow()
{
    m2x_assert(!inRow_, "beginRow while a row is open");
    pending_.clear();
    inRow_ = true;
}

void
TextTable::cell(const std::string &s)
{
    m2x_assert(inRow_, "cell outside beginRow/endRow");
    pending_.push_back(s);
}

void
TextTable::cell(double v, int digits)
{
    cell(fmtNum(v, digits));
}

void
TextTable::endRow()
{
    m2x_assert(inRow_, "endRow without beginRow");
    inRow_ = false;
    addRow(pending_);
    pending_.clear();
}

std::string
TextTable::render() const
{
    std::vector<size_t> width(header_.size(), 0);
    for (size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row,
                        std::string &out) {
        for (size_t c = 0; c < row.size(); ++c) {
            out += row[c];
            out.append(width[c] - row[c].size(), ' ');
            if (c + 1 != row.size())
                out += "  ";
        }
        out += '\n';
    };

    std::string out;
    emit_row(header_, out);
    size_t total = 0;
    for (size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c + 1 != width.size() ? 2 : 0);
    out.append(total, '-');
    out += '\n';
    for (const auto &row : rows_)
        emit_row(row, out);
    return out;
}

void
TextTable::print(const std::string &caption) const
{
    if (!caption.empty())
        std::printf("%s\n", caption.c_str());
    std::fputs(render().c_str(), stdout);
    std::printf("\n");
    std::fflush(stdout);
}

} // namespace m2x
