/**
 * @file
 * The five shared-scale computation rules evaluated in Tbl. 8 of the
 * paper. All derive an E8M0 exponent E (scale S = 2^E) from a block's
 * maximum absolute value amax and the element format's
 *   P = largest representable power of two (4 for FP4 E2M1), and
 *   M = largest representable magnitude (6 for FP4 E2M1).
 *
 *  floor : E = floor(log2(amax / P))        (OCP default)
 *  ceil  : E = ceil (log2(amax / M))
 *  rtn1  : E = round(log2(amax / M))
 *  rtn2  : E = round(log2(amax / P))
 *  rtne  : E = floor(log2(round2(amax) / P)) where round2() rounds
 *          amax to the nearest power of two in value space (linear
 *          midpoint 1.5 * 2^k, ties toward the smaller power).
 *
 * For FP4 (M = 1.5 P) rtne and ceil coincide, as the paper notes.
 * All log/floor/ceil arithmetic is done on exact exponent/mantissa
 * decompositions (frexp) so power-of-two boundaries are never subject
 * to floating-point log error.
 */

#ifndef M2X_QUANT_SCALE_RULES_HH__
#define M2X_QUANT_SCALE_RULES_HH__

#include <string>

#include "formats/e8m0.hh"
#include "formats/minifloat.hh"

namespace m2x {

enum class ScaleRule
{
    Floor,
    Ceil,
    Rtn1,
    Rtn2,
    Rtne,
};

/** Human-readable rule name (matches the paper's Tbl. 8 rows). */
const char *scaleRuleName(ScaleRule rule);

/** Exact floor(log2(x)) for finite positive x. */
int floorLog2Exact(float x);

/** Exact ceil(log2(x)) for finite positive x. */
int ceilLog2Exact(float x);

/** round(log2(x)) with the geometric threshold sqrt(2). */
int roundLog2Exact(float x);

/**
 * Shared-scale exponent for a block.
 *
 * @param amax block maximum absolute value (>= 0)
 * @param elem the element minifloat (provides P and M)
 * @param rule which of the five rules to apply
 * @return the E8M0 scale (2^E), clamped to the representable range.
 *         amax == 0 yields the identity scale 2^0.
 */
ScaleE8m0 computeSharedScale(float amax, const Minifloat &elem,
                             ScaleRule rule);

} // namespace m2x

#endif // M2X_QUANT_SCALE_RULES_HH__
