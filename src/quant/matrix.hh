/**
 * @file
 * Row-major float matrix used across the quantizers, GEMM kernels and
 * the transformer substrate. Deliberately minimal: contiguous storage,
 * span-based row access, no expression templates.
 */

#ifndef M2X_QUANT_MATRIX_HH__
#define M2X_QUANT_MATRIX_HH__

#include <cstddef>
#include <span>
#include <vector>

#include "util/logging.hh"

namespace m2x {

/** Dense row-major matrix of floats. */
class Matrix
{
  public:
    Matrix() : rows_(0), cols_(0) {}

    Matrix(size_t rows, size_t cols, float fill = 0.0f)
        : rows_(rows), cols_(cols), data_(rows * cols, fill)
    {}

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }
    size_t size() const { return data_.size(); }

    float &operator()(size_t r, size_t c)
    {
        return data_[r * cols_ + c];
    }
    float operator()(size_t r, size_t c) const
    {
        return data_[r * cols_ + c];
    }

    std::span<float> row(size_t r)
    {
        m2x_assert(r < rows_, "row %zu out of %zu", r, rows_);
        return {data_.data() + r * cols_, cols_};
    }
    std::span<const float> row(size_t r) const
    {
        m2x_assert(r < rows_, "row %zu out of %zu", r, rows_);
        return {data_.data() + r * cols_, cols_};
    }

    std::span<float> flat() { return {data_.data(), data_.size()}; }
    std::span<const float> flat() const
    {
        return {data_.data(), data_.size()};
    }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    /**
     * Reshape to rows x cols, reusing the existing storage when its
     * capacity allows (no reallocation on a steady-state serving
     * loop). Unlike the fill constructor, element values are
     * unspecified afterwards — callers overwrite every element.
     */
    void resize(size_t rows, size_t cols)
    {
        rows_ = rows;
        cols_ = cols;
        data_.resize(rows * cols);
    }

    /** Transposed copy. */
    Matrix transposed() const;

    /** Elementwise check for identical shape. */
    bool sameShape(const Matrix &o) const
    {
        return rows_ == o.rows_ && cols_ == o.cols_;
    }

  private:
    size_t rows_;
    size_t cols_;
    std::vector<float> data_;
};

} // namespace m2x

#endif // M2X_QUANT_MATRIX_HH__
