#include "quant/group_quantizer.hh"

#include <algorithm>

namespace m2x {

void
quantizeSpanGrouped(std::span<const float> in, std::span<float> out,
                    const GroupQuantizer &q)
{
    m2x_assert(in.size() == out.size(), "span size mismatch");
    size_t k = q.groupSize();
    for (size_t off = 0; off < in.size(); off += k) {
        size_t len = std::min(k, in.size() - off);
        q.quantizeGroup(in.subspan(off, len), out.subspan(off, len));
    }
}

Matrix
quantizeRowsGrouped(const Matrix &in, GroupQuantizer &q)
{
    q.calibrate(in.flat());
    Matrix out(in.rows(), in.cols());
    for (size_t r = 0; r < in.rows(); ++r)
        quantizeSpanGrouped(in.row(r), out.row(r), q);
    return out;
}

Matrix
quantizeColsGrouped(const Matrix &in, GroupQuantizer &q)
{
    Matrix t = in.transposed();
    Matrix qt = quantizeRowsGrouped(t, q);
    return qt.transposed();
}

Matrix
quantizeRowsWholeChannel(const Matrix &in, GroupQuantizer &q)
{
    q.calibrate(in.flat());
    Matrix out(in.rows(), in.cols());
    for (size_t r = 0; r < in.rows(); ++r)
        q.quantizeGroup(in.row(r), out.row(r));
    return out;
}

} // namespace m2x
