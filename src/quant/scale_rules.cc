#include "quant/scale_rules.hh"

#include <cmath>

#include "util/logging.hh"

namespace m2x {

const char *
scaleRuleName(ScaleRule rule)
{
    switch (rule) {
      case ScaleRule::Floor: return "floor";
      case ScaleRule::Ceil: return "ceil";
      case ScaleRule::Rtn1: return "RTN1";
      case ScaleRule::Rtn2: return "RTN2";
      case ScaleRule::Rtne: return "RTNE";
    }
    return "?";
}

int
floorLog2Exact(float x)
{
    m2x_assert(x > 0.0f && std::isfinite(x), "floorLog2 of %g",
               static_cast<double>(x));
    int e;
    float m = std::frexp(x, &e); // x = m * 2^e, m in [0.5, 1)
    (void)m;
    // log2(x) in [e-1, e); floor is e-1 (m == 0.5 gives exactly e-1).
    return e - 1;
}

int
ceilLog2Exact(float x)
{
    m2x_assert(x > 0.0f && std::isfinite(x), "ceilLog2 of %g",
               static_cast<double>(x));
    int e;
    float m = std::frexp(x, &e);
    return (m == 0.5f) ? e - 1 : e;
}

int
roundLog2Exact(float x)
{
    m2x_assert(x > 0.0f && std::isfinite(x), "roundLog2 of %g",
               static_cast<double>(x));
    int e;
    float m = std::frexp(x, &e); // 2m in [1, 2)
    // round(log2(x)) = e-1 if 2m < sqrt(2) else e. sqrt(2) is not
    // exactly representable, so no ties occur.
    return (2.0f * m < std::sqrt(2.0f)) ? e - 1 : e;
}

namespace {

/**
 * Round to the nearest power of two in value space; the linear
 * midpoint between 2^k and 2^(k+1) is 1.5 * 2^k and ties go to the
 * smaller power (matches the RTNE <-> ceil equivalence for FP4).
 * Returns the exponent k of the chosen power 2^k.
 */
int
roundToPow2Exponent(float x)
{
    int e;
    float m = std::frexp(x, &e); // x = m * 2^e, m in [0.5, 1)
    // Powers bracketing x: 2^(e-1) and 2^e; midpoint 1.5 * 2^(e-1)
    // corresponds to m == 0.75.
    return (m <= 0.75f) ? e - 1 : e;
}

} // anonymous namespace

ScaleE8m0
computeSharedScale(float amax, const Minifloat &elem, ScaleRule rule)
{
    if (amax <= 0.0f || !std::isfinite(amax))
        return ScaleE8m0::fromExponent(0);

    int p_log2 = floorLog2Exact(elem.maxPow2());
    int e = 0;
    switch (rule) {
      case ScaleRule::Floor:
        e = floorLog2Exact(amax) - p_log2;
        break;
      case ScaleRule::Ceil:
        e = ceilLog2Exact(amax / elem.maxValue());
        break;
      case ScaleRule::Rtn1:
        e = roundLog2Exact(amax / elem.maxValue());
        break;
      case ScaleRule::Rtn2:
        e = roundLog2Exact(amax) - p_log2;
        break;
      case ScaleRule::Rtne:
        e = roundToPow2Exponent(amax) - p_log2;
        break;
    }
    return ScaleE8m0::fromExponent(e);
}

} // namespace m2x
