/**
 * @file
 * The common interface all block/group quantizers implement, plus the
 * equivalent-bit-width (EBW, Eq. 2) accounting and helpers that apply
 * a group quantizer over whole matrices.
 *
 * A quantizer here is a *simulated* codec: quantizeGroup() consumes k
 * high-precision values and produces the k dequantized values the
 * format would reconstruct. Bit-level packing is provided separately
 * (core/m2xfp_packed.hh) and is verified to reconstruct the same
 * values.
 */

#ifndef M2X_QUANT_GROUP_QUANTIZER_HH__
#define M2X_QUANT_GROUP_QUANTIZER_HH__

#include <memory>
#include <span>
#include <string>

#include "quant/matrix.hh"

namespace m2x {

/** Eq. 2: EBW = B_elem + (B_meta + B_scale) / k. */
struct BitBudget
{
    double elemBits = 0.0;  //!< bits per element
    double scaleBits = 0.0; //!< shared-scale bits per group
    double metaBits = 0.0;  //!< metadata bits per group
    unsigned groupSize = 1; //!< k

    double
    ebw() const
    {
        return elemBits + (metaBits + scaleBits) /
               static_cast<double>(groupSize);
    }
};

/**
 * Abstract group quantizer: maps one group of values to the values a
 * decoder would reconstruct.
 */
class GroupQuantizer
{
  public:
    virtual ~GroupQuantizer() = default;

    /**
     * Observe the full tensor before group quantization begins.
     * Formats with tensor-level state (NVFP4's tensor scale) override
     * this; the default is a no-op. The matrix helpers below call it
     * once per tensor.
     */
    virtual void calibrate(std::span<const float> full) { (void)full; }

    /**
     * Quantize one group.
     * @param in   up to groupSize() source values
     * @param out  same length; receives dequantized values
     */
    virtual void quantizeGroup(std::span<const float> in,
                               std::span<float> out) const = 0;

    /** Nominal group size k (callers may pass shorter tail groups). */
    virtual unsigned groupSize() const = 0;

    /** Storage accounting for Eq. 2. */
    virtual BitBudget bitBudget() const = 0;

    /** Display name used in bench tables. */
    virtual std::string name() const = 0;

    double ebw() const { return bitBudget().ebw(); }
};

/**
 * Apply @p q independently to consecutive groups of each row of @p in
 * (after a calibrate() pass over the whole tensor). Tail groups are
 * simply shorter.
 */
Matrix quantizeRowsGrouped(const Matrix &in, GroupQuantizer &q);

/** Same, grouping down the columns (per-column groups along rows). */
Matrix quantizeColsGrouped(const Matrix &in, GroupQuantizer &q);

/** Quantize a flat span group-by-group (no calibrate() call). */
void quantizeSpanGrouped(std::span<const float> in, std::span<float> out,
                         const GroupQuantizer &q);

/**
 * Per-(whole-)channel quantization helper: treats each full row as a
 * single group regardless of the quantizer's nominal k. Used for the
 * "channel" point of Fig. 4.
 */
Matrix quantizeRowsWholeChannel(const Matrix &in, GroupQuantizer &q);

} // namespace m2x

#endif // M2X_QUANT_GROUP_QUANTIZER_HH__
