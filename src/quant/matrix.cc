#include "quant/matrix.hh"

namespace m2x {

Matrix
Matrix::transposed() const
{
    Matrix t(cols_, rows_);
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = 0; c < cols_; ++c)
            t(c, r) = (*this)(r, c);
    return t;
}

} // namespace m2x
