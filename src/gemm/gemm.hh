/**
 * @file
 * Reference GEMM kernels and the quantized linear layer used by the
 * transformer substrate. The quantized path follows the MX dataflow:
 * operands are group-quantized along the reduction (K) dimension and
 * the dot product accumulates dequantized group contributions — the
 * same arithmetic the systolic PE array performs (the bit-exact
 * datapath model lives in src/hw and is tested against this).
 */

#ifndef M2X_GEMM_GEMM_HH__
#define M2X_GEMM_GEMM_HH__

#include <memory>

#include "quant/group_quantizer.hh"
#include "quant/matrix.hh"

namespace m2x {

/**
 * C[M,N] = A[M,K] * B^T, with B stored row-major as [N,K] (the usual
 * weight layout: one output channel per row, contiguous along K).
 */
Matrix matmulNt(const Matrix &a, const Matrix &b_nk);

/** C[M,N] = A[M,K] * B[K,N]. */
Matrix matmul(const Matrix &a, const Matrix &b);

/**
 * Abstract linear operator y = f(x): the unit the transformer
 * substrate composes. Implementations include the plain quantized
 * linear below and the algorithm-scheme wrappers (QuaRot rotation,
 * GPTQ-compensated weights) in src/model/algorithms.
 */
class LinearOp
{
  public:
    virtual ~LinearOp() = default;

    /** y[M, out] = op(x[M, in]) */
    virtual Matrix forward(const Matrix &x) const = 0;

    /**
     * Same, writing into caller storage: @p y is resized in place
     * (capacity reused), so a caller keeping one output per layer
     * slot makes the steady-state forward allocation-free. The base
     * implementation merely move-assigns forward()'s fresh matrix —
     * implementations with a native into-style path override this.
     */
    virtual void
    forwardInto(const Matrix &x, Matrix &y) const
    {
        y = forward(x);
    }

    virtual size_t inFeatures() const = 0;
    virtual size_t outFeatures() const = 0;
};

/**
 * A linear layer y = x W^T with independently quantized operands.
 *
 * The weight is quantized once at construction (offline, like the
 * paper's weight calibration); activations are quantized on every
 * forward call (online). Either quantizer may be null for an FP
 * reference path.
 */
class QuantizedLinear : public LinearOp
{
  public:
    /**
     * @param weight  [out_features, in_features]
     * @param weight_q  offline weight quantizer (nullable)
     * @param act_q  online activation quantizer (nullable); shared,
     *        not owned — one instance can serve many layers
     */
    QuantizedLinear(Matrix weight,
                    std::shared_ptr<GroupQuantizer> weight_q,
                    std::shared_ptr<GroupQuantizer> act_q);

    /** y[M, out] = quantize(x)[M, in] * W_q^T */
    Matrix forward(const Matrix &x) const override;

    size_t inFeatures() const override { return weight_.cols(); }
    size_t outFeatures() const override { return weight_.rows(); }

    /**
     * The dequantized weight actually used by forward(). Returned by
     * const reference — callers that only read (GEMM, packing,
     * accuracy evaluation) must not copy it.
     */
    const Matrix &effectiveWeight() const { return weight_; }

    /**
     * Replace the weight (re-quantizing with the weight quantizer).
     * The const-ref overload never copies when a weight quantizer is
     * set (quantization produces a fresh matrix anyway); the rvalue
     * overload moves storage straight in on the unquantized path.
     */
    void setWeight(const Matrix &weight);
    void setWeight(Matrix &&weight);

  private:
    Matrix weight_; // dequantized (or original) weight
    std::shared_ptr<GroupQuantizer> weightQ_;
    std::shared_ptr<GroupQuantizer> actQ_;
};

} // namespace m2x

#endif // M2X_GEMM_GEMM_HH__
