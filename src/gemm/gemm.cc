#include "gemm/gemm.hh"

#include "util/logging.hh"

namespace m2x {

Matrix
matmulNt(const Matrix &a, const Matrix &b_nk)
{
    m2x_assert(a.cols() == b_nk.cols(),
               "matmulNt K mismatch: %zu vs %zu", a.cols(),
               b_nk.cols());
    size_t m = a.rows(), n = b_nk.rows(), k = a.cols();
    Matrix c(m, n);
    for (size_t i = 0; i < m; ++i) {
        const float *arow = a.data() + i * k;
        float *crow = c.data() + i * n;
        for (size_t j = 0; j < n; ++j) {
            const float *brow = b_nk.data() + j * k;
            double acc = 0.0;
            for (size_t p = 0; p < k; ++p)
                acc += static_cast<double>(arow[p]) * brow[p];
            crow[j] = static_cast<float>(acc);
        }
    }
    return c;
}

Matrix
matmul(const Matrix &a, const Matrix &b)
{
    m2x_assert(a.cols() == b.rows(), "matmul K mismatch: %zu vs %zu",
               a.cols(), b.rows());
    size_t m = a.rows(), n = b.cols(), k = a.cols();
    Matrix c(m, n);
    for (size_t i = 0; i < m; ++i) {
        const float *arow = a.data() + i * k;
        float *crow = c.data() + i * n;
        for (size_t p = 0; p < k; ++p) {
            float av = arow[p];
            if (av == 0.0f)
                continue;
            const float *brow = b.data() + p * n;
            for (size_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
    return c;
}

QuantizedLinear::QuantizedLinear(Matrix weight,
                                 std::shared_ptr<GroupQuantizer> weight_q,
                                 std::shared_ptr<GroupQuantizer> act_q)
    : weightQ_(std::move(weight_q)), actQ_(std::move(act_q))
{
    setWeight(std::move(weight));
}

void
QuantizedLinear::setWeight(const Matrix &weight)
{
    if (weightQ_)
        weight_ = quantizeRowsGrouped(weight, *weightQ_);
    else
        weight_ = weight;
}

void
QuantizedLinear::setWeight(Matrix &&weight)
{
    if (weightQ_)
        weight_ = quantizeRowsGrouped(weight, *weightQ_);
    else
        weight_ = std::move(weight);
}

Matrix
QuantizedLinear::forward(const Matrix &x) const
{
    m2x_assert(x.cols() == weight_.cols(),
               "linear in_features mismatch: %zu vs %zu", x.cols(),
               weight_.cols());
    if (!actQ_)
        return matmulNt(x, weight_);
    Matrix xq = quantizeRowsGrouped(x, *actQ_);
    return matmulNt(xq, weight_);
}

} // namespace m2x
