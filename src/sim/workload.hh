/**
 * @file
 * LLM linear-layer GEMM workloads for the accelerator simulator
 * (Fig. 13). Shapes use the *real* model dimensions (the simulator
 * is analytic over tile counts, so full-size shapes cost nothing),
 * at the paper's sequence length of 4096.
 */

#ifndef M2X_SIM_WORKLOAD_HH__
#define M2X_SIM_WORKLOAD_HH__

#include <cstdint>
#include <string>
#include <vector>

namespace m2x {
namespace sim {

/** One GEMM: [m, k] x [k, n] with m the token dimension. */
struct GemmShape
{
    std::string name;
    uint64_t m;
    uint64_t k;
    uint64_t n;
    uint64_t repeat = 1; //!< identical layers

    double
    macs() const
    {
        return static_cast<double>(m) * static_cast<double>(k) *
               static_cast<double>(n) * static_cast<double>(repeat);
    }
};

/** Architecture parameters of a real LLM (full size). */
struct LlmDims
{
    std::string name;
    uint64_t dModel;
    uint64_t dFf;
    uint64_t nLayers;
    uint64_t kvDim;      //!< K/V projection width (GQA-aware)
    bool gatedMlp;       //!< SwiGLU (3 matrices) vs classic (2)
    uint64_t vocab;
};

/** @{ The six Fig. 13 evaluation models. */
LlmDims llama2_7bDims();
LlmDims llama3_8bDims();
LlmDims llama3_70bDims();
LlmDims opt_6_7bDims();
LlmDims mistral_7bDims();
LlmDims falcon_7bDims();
std::vector<LlmDims> fig13Models();
/** @} */

/** All linear-layer GEMMs of a prefill pass at @p seq_len tokens. */
std::vector<GemmShape> linearLayerGemms(const LlmDims &dims,
                                        uint64_t seq_len = 4096);

/** Total MAC count of a workload. */
double workloadMacs(const std::vector<GemmShape> &ws);

} // namespace sim
} // namespace m2x

#endif // M2X_SIM_WORKLOAD_HH__
