#include "sim/workload.hh"

namespace m2x {
namespace sim {

LlmDims
llama2_7bDims()
{
    return {"LLaMA2-7B", 4096, 11008, 32, 4096, true, 32000};
}

LlmDims
llama3_8bDims()
{
    return {"LLaMA3-8B", 4096, 14336, 32, 1024, true, 128256};
}

LlmDims
llama3_70bDims()
{
    return {"LLaMA3-70B", 8192, 28672, 80, 1024, true, 128256};
}

LlmDims
opt_6_7bDims()
{
    return {"OPT-6.7B", 4096, 16384, 32, 4096, false, 50272};
}

LlmDims
mistral_7bDims()
{
    return {"Mistral-7B", 4096, 14336, 32, 1024, true, 32000};
}

LlmDims
falcon_7bDims()
{
    return {"Falcon-7B", 4544, 18176, 32, 4544, false, 65024};
}

std::vector<LlmDims>
fig13Models()
{
    return {llama2_7bDims(), llama3_8bDims(), llama3_70bDims(),
            opt_6_7bDims(),  mistral_7bDims(), falcon_7bDims()};
}

std::vector<GemmShape>
linearLayerGemms(const LlmDims &d, uint64_t seq_len)
{
    std::vector<GemmShape> w;
    w.push_back({"q_proj", seq_len, d.dModel, d.dModel, d.nLayers});
    w.push_back({"k_proj", seq_len, d.dModel, d.kvDim, d.nLayers});
    w.push_back({"v_proj", seq_len, d.dModel, d.kvDim, d.nLayers});
    w.push_back({"o_proj", seq_len, d.dModel, d.dModel, d.nLayers});
    if (d.gatedMlp) {
        w.push_back({"gate_proj", seq_len, d.dModel, d.dFf,
                     d.nLayers});
        w.push_back({"up_proj", seq_len, d.dModel, d.dFf, d.nLayers});
        w.push_back({"down_proj", seq_len, d.dFf, d.dModel,
                     d.nLayers});
    } else {
        w.push_back({"fc1", seq_len, d.dModel, d.dFf, d.nLayers});
        w.push_back({"fc2", seq_len, d.dFf, d.dModel, d.nLayers});
    }
    w.push_back({"lm_head", seq_len, d.dModel, d.vocab, 1});
    return w;
}

double
workloadMacs(const std::vector<GemmShape> &ws)
{
    double total = 0.0;
    for (const auto &g : ws)
        total += g.macs();
    return total;
}

} // namespace sim
} // namespace m2x
