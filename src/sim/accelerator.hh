/**
 * @file
 * Tile-level cycle/energy simulator for MX-format systolic
 * accelerators (Fig. 13).
 *
 * Substitution note (DESIGN.md §3): the paper extends DNNWeaver and
 * synthesizes units at 28 nm; we model the same 32x32 weight-
 * stationary array analytically per GEMM — tile counts give compute
 * cycles, a two-strategy reuse model gives DRAM traffic, and latency
 * is max(compute, memory) under double buffering. What differs
 * between accelerators (and is what Fig. 13 measures) is captured in
 * AcceleratorConfig: how many tensors must fall back to 8-bit to
 * hold accuracy, the decode/requantization energy of their metadata
 * machinery, and per-MAC energy multipliers for exotic datapaths.
 * 8-bit operands on the common 4-bit PE array take 4 passes
 * (2 nibbles x 2 nibbles), exactly like the paper's iso-PE setup.
 */

#ifndef M2X_SIM_ACCELERATOR_HH__
#define M2X_SIM_ACCELERATOR_HH__

#include <string>
#include <vector>

#include "sim/workload.hh"

namespace m2x {
namespace sim {

/** Architecture + format parameters of one accelerator. */
struct AcceleratorConfig
{
    std::string name;

    /** @{ Common iso-hardware parameters (§6.1). */
    unsigned peRows = 32;
    unsigned peCols = 32;
    double freqGhz = 0.5;
    double dramGBs = 128.0;
    double bufWeightKb = 144.0;
    double bufActKb = 144.0;
    double bufOutKb = 36.0;
    /** @} */

    /** Effective storage bits per element (incl. scale+metadata). */
    double weightBits = 4.5;
    double actBits = 4.5;

    /**
     * Fraction of tensors kept at 8 bits to preserve accuracy (the
     * paper's observation that baselines must fall back; >0.5 for
     * MX-OliVe). An 8-bit tensor costs 4 compute passes and 8.25
     * storage bits.
     */
    double fallback8b = 0.0;

    /** Extra decode energy per operand element fed to the array, pJ
     *  (metadata decoders, type converters, ReCoN-style reorder). */
    double decodeEnergyPj = 0.0;

    /** Online activation quantization energy per element, pJ. */
    double quantEnergyPj = 0.0;

    /** Core MAC energy multiplier vs the plain FP4 PE. */
    double macEnergyMult = 1.0;

    /** Fractional latency overhead of the decode/reorder pipeline. */
    double pipelineOverhead = 0.0;
};

/** Per-GEMM / per-workload simulation results. */
struct SimStats
{
    double cycles = 0.0;
    double seconds = 0.0;
    double coreEnergyJ = 0.0;
    double bufferEnergyJ = 0.0;
    double dramEnergyJ = 0.0;
    double staticEnergyJ = 0.0;

    double
    totalEnergyJ() const
    {
        return coreEnergyJ + bufferEnergyJ + dramEnergyJ +
               staticEnergyJ;
    }

    SimStats &operator+=(const SimStats &o);
};

/** The analytic tile-level simulator. */
class TileSimulator
{
  public:
    explicit TileSimulator(AcceleratorConfig cfg);

    /** Simulate one GEMM (repeat included). */
    SimStats simulateGemm(const GemmShape &g) const;

    /** Simulate a whole workload. */
    SimStats simulateWorkload(const std::vector<GemmShape> &ws) const;

    const AcceleratorConfig &config() const { return cfg_; }

  private:
    AcceleratorConfig cfg_;

    /** Stats for a GEMM executed entirely at the given bit widths
     *  and pass count. */
    SimStats simulateAtBits(const GemmShape &g, double w_bits,
                            double a_bits, double passes) const;
};

/** @{ Fig. 13 accelerator configurations. */
AcceleratorConfig m2xfpAccel();
AcceleratorConfig mxOliveAccel();
AcceleratorConfig mxAntAccel();
AcceleratorConfig mxMAntAccel();
AcceleratorConfig microScopiqAccel();
/** The W8A8 MXINT8 reference everything is normalized to. */
AcceleratorConfig mxint8Reference();
std::vector<AcceleratorConfig> fig13Accelerators();
/** @} */

} // namespace sim
} // namespace m2x

#endif // M2X_SIM_ACCELERATOR_HH__
