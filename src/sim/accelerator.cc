#include "sim/accelerator.hh"

#include <algorithm>
#include <cmath>

#include "hw/area_power.hh"
#include "util/logging.hh"

namespace m2x {
namespace sim {

namespace {

/** 28 nm energy constants (order-of-magnitude per-op costs). */
constexpr double macEnergyPj = 0.25;   //!< one FP4 x FP4 MAC
constexpr double dramEnergyPjPerByte = 20.0;
constexpr double outputBytesPerElem = 2.0; //!< FP16 writeback
/** In-array operand reuse: each buffered element is broadcast across
 *  the 32x32 PE register fabric before being re-read. */
constexpr double regTileReuse = 32.0;
/** Leakage + clock tree, from the Tbl. 5 power total. */
constexpr double staticPowerW = 0.30 * 204.02e-3;

} // anonymous namespace

SimStats &
SimStats::operator+=(const SimStats &o)
{
    cycles += o.cycles;
    seconds += o.seconds;
    coreEnergyJ += o.coreEnergyJ;
    bufferEnergyJ += o.bufferEnergyJ;
    dramEnergyJ += o.dramEnergyJ;
    staticEnergyJ += o.staticEnergyJ;
    return *this;
}

TileSimulator::TileSimulator(AcceleratorConfig cfg)
    : cfg_(std::move(cfg))
{
    m2x_assert(cfg_.peRows >= 1 && cfg_.peCols >= 1, "bad PE array");
    m2x_assert(cfg_.fallback8b >= 0.0 && cfg_.fallback8b <= 1.0,
               "bad fallback fraction");
}

SimStats
TileSimulator::simulateAtBits(const GemmShape &g, double w_bits,
                              double a_bits, double passes) const
{
    double m = static_cast<double>(g.m);
    double k = static_cast<double>(g.k);
    double n = static_cast<double>(g.n);
    double reps = static_cast<double>(g.repeat);

    // ---- Compute cycles: weight-stationary tiles ------------------
    double k_tiles = std::ceil(k / cfg_.peRows);
    double n_tiles = std::ceil(n / cfg_.peCols);
    double fill = cfg_.peRows + cfg_.peCols; // pipeline fill/drain
    double compute_cycles =
        k_tiles * n_tiles * (m + fill) * passes *
        (1.0 + cfg_.pipelineOverhead);

    // ---- DRAM traffic: best of two reuse strategies ---------------
    double w_bytes = k * n * w_bits / 8.0;
    double a_bytes = m * k * a_bits / 8.0;
    double o_bytes = m * n * outputBytesPerElem;

    // Strategy A (weight-resident): weights stream once; activations
    // re-stream once per weight-buffer-sized N slice.
    double n_cols_buf = std::max(
        1.0, std::floor(cfg_.bufWeightKb * 1024.0 * 8.0 /
                        (k * w_bits)));
    double traffic_a = w_bytes + a_bytes * std::ceil(n / n_cols_buf);

    // Strategy B (activation-resident): activations stream once;
    // weights re-stream once per act-buffer-sized M slice.
    double m_rows_buf = std::max(
        1.0,
        std::floor(cfg_.bufActKb * 1024.0 * 8.0 / (k * a_bits)));
    double traffic_b = a_bytes + w_bytes * std::ceil(m / m_rows_buf);

    // Strategy C (output-block tiling): T x T output blocks with the
    // buffers split between the operands; each operand streams once
    // per opposing block stripe.
    double t_blk = std::max(1.0, std::min(m_rows_buf, n_cols_buf));
    double traffic_c = a_bytes * std::max(1.0, n / t_blk / 2.0) +
                       w_bytes * std::max(1.0, m / t_blk / 2.0);

    double dram_bytes =
        std::min({traffic_a, traffic_b, traffic_c}) + o_bytes;

    double freq_hz = cfg_.freqGhz * 1e9;
    double mem_cycles =
        dram_bytes / (cfg_.dramGBs * 1e9) * freq_hz;

    // Double buffering: compute and memory overlap.
    double cycles = std::max(compute_cycles, mem_cycles) * reps;
    double seconds = cycles / freq_hz;

    // ---- Energy ----------------------------------------------------
    double macs = m * k * n * reps;
    SimStats s;
    s.cycles = cycles;
    s.seconds = seconds;
    // Core: every pass re-executes the MAC array; decode energy per
    // operand element fed to the array; quantization per activation
    // element produced online.
    double elems_fed = (m * k + k * n) * reps;
    s.coreEnergyJ = (macs * passes * macEnergyPj * cfg_.macEnergyMult +
                     elems_fed * cfg_.decodeEnergyPj +
                     m * k * reps * cfg_.quantEnergyPj) *
                    1e-12;
    // Buffers: operand feeds + output writebacks.
    hw::SramModel act_buf{cfg_.bufActKb};
    hw::SramModel wt_buf{cfg_.bufWeightKb};
    hw::SramModel out_buf{cfg_.bufOutKb};
    // Buffer reads: operand blocks are cached in PE-adjacent
    // registers, so each element is re-read once per regTileReuse
    // worth of the opposing dimension.
    double act_feed_bytes =
        m * k * std::max(1.0, n / regTileReuse) * a_bits / 8.0 * reps;
    double wt_feed_bytes =
        k * n * std::max(1.0, m / regTileReuse) * w_bits / 8.0 * reps;
    double out_bytes_buf = m * n * outputBytesPerElem * reps;
    s.bufferEnergyJ = (act_feed_bytes * act_buf.energyPerBytePj() +
                       wt_feed_bytes * wt_buf.energyPerBytePj() +
                       out_bytes_buf * out_buf.energyPerBytePj()) *
                      1e-12;
    s.dramEnergyJ = dram_bytes * reps * dramEnergyPjPerByte * 1e-12;
    s.staticEnergyJ = seconds * staticPowerW;
    return s;
}

SimStats
TileSimulator::simulateGemm(const GemmShape &g) const
{
    // Blend the low-bit and 8-bit-fallback executions by the
    // fallback fraction (per-tensor decision in the real system).
    SimStats low = simulateAtBits(g, cfg_.weightBits, cfg_.actBits,
                                  1.0);
    if (cfg_.fallback8b == 0.0)
        return low;
    SimStats high = simulateAtBits(g, 8.25, 8.25, 4.0);
    double f = cfg_.fallback8b;
    SimStats s;
    s.cycles = low.cycles * (1 - f) + high.cycles * f;
    s.seconds = low.seconds * (1 - f) + high.seconds * f;
    s.coreEnergyJ = low.coreEnergyJ * (1 - f) + high.coreEnergyJ * f;
    s.bufferEnergyJ =
        low.bufferEnergyJ * (1 - f) + high.bufferEnergyJ * f;
    s.dramEnergyJ = low.dramEnergyJ * (1 - f) + high.dramEnergyJ * f;
    s.staticEnergyJ =
        low.staticEnergyJ * (1 - f) + high.staticEnergyJ * f;
    return s;
}

SimStats
TileSimulator::simulateWorkload(const std::vector<GemmShape> &ws) const
{
    SimStats total;
    for (const auto &g : ws)
        total += simulateGemm(g);
    return total;
}

AcceleratorConfig
m2xfpAccel()
{
    AcceleratorConfig c;
    c.name = "M2XFP";
    c.weightBits = 4.5; // 4 + (8 scale + 8 meta)/32
    c.actBits = 4.5;
    c.fallback8b = 0.0;
    c.decodeEnergyPj = 0.01; // top-1 decode unit (Tbl. 5: ~0.3% power)
    c.quantEnergyPj = 0.02;  // streaming quantization engine
    c.macEnergyMult = 1.04;  // aux MAC + subgroup scaler (+4% area)
    c.pipelineOverhead = 0.01;
    return c;
}

AcceleratorConfig
mxOliveAccel()
{
    AcceleratorConfig c;
    c.name = "MX-OliVe";
    c.weightBits = 4.40625; // outlier-victim metadata
    c.actBits = 4.40625;
    c.fallback8b = 0.55; // >50% of tensors at 8 bits (§6.3)
    c.decodeEnergyPj = 0.05; // outlier-victim decoder
    c.quantEnergyPj = 0.03;
    c.macEnergyMult = 1.05;
    c.pipelineOverhead = 0.03;
    return c;
}

AcceleratorConfig
mxAntAccel()
{
    AcceleratorConfig c;
    c.name = "MX-ANT";
    c.weightBits = 4.3125;
    c.actBits = 4.25;
    c.fallback8b = 0.30;
    c.decodeEnergyPj = 0.04; // multi-type decoders
    c.quantEnergyPj = 0.03;
    c.macEnergyMult = 1.08;
    c.pipelineOverhead = 0.02;
    return c;
}

AcceleratorConfig
mxMAntAccel()
{
    AcceleratorConfig c;
    c.name = "MX-M-ANT";
    c.weightBits = 4.375;
    c.actBits = 4.25;
    c.fallback8b = 0.28;
    c.decodeEnergyPj = 0.05;
    c.quantEnergyPj = 0.03;
    c.macEnergyMult = 1.22; // shift-and-accumulate datapath (§6.3)
    c.pipelineOverhead = 0.02;
    return c;
}

AcceleratorConfig
microScopiqAccel()
{
    AcceleratorConfig c;
    c.name = "MicroScopiQ";
    c.weightBits = 4.625; // 40+ metadata bits per block, amortized
    c.actBits = 4.25;
    c.fallback8b = 0.25;
    c.decodeEnergyPj = 0.09; // ReCoN outlier reorder unit (§6.3)
    c.quantEnergyPj = 0.04;
    c.macEnergyMult = 1.10;
    c.pipelineOverhead = 0.10;
    return c;
}

AcceleratorConfig
mxint8Reference()
{
    AcceleratorConfig c;
    c.name = "MXINT8-W8A8";
    c.weightBits = 8.25;
    c.actBits = 8.25;
    c.fallback8b = 0.0;
    c.decodeEnergyPj = 0.0;
    c.quantEnergyPj = 0.01;
    c.macEnergyMult = 1.0;
    c.pipelineOverhead = 0.0;
    // The reference executes everything at 8 bits: model via the
    // 4-pass fallback path on the iso 4-bit array.
    c.fallback8b = 1.0;
    return c;
}

std::vector<AcceleratorConfig>
fig13Accelerators()
{
    return {mxOliveAccel(), mxAntAccel(), mxMAntAccel(),
            microScopiqAccel(), m2xfpAccel()};
}

} // namespace sim
} // namespace m2x
